"""Tests for the tiled GEMM decomposition and execution driver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.latency import arrayflex_tile_cycles, tile_count
from repro.nn.workloads import random_int_matrices
from repro.sim.tiling import TilingPlan, run_tiled_gemm


class TestTilingPlan:
    def test_exact_fit(self):
        plan = TilingPlan(n_dim=16, m_dim=16, rows=8, cols=8)
        assert plan.n_tiles_vertical == 2
        assert plan.n_tiles_horizontal == 2
        assert plan.total_tiles == 4

    def test_ceiling_division(self):
        """Eq. (2)/(4): ceil(N/R) x ceil(M/C)."""
        plan = TilingPlan(n_dim=17, m_dim=9, rows=8, cols=8)
        assert plan.total_tiles == 3 * 2

    def test_smaller_than_array(self):
        plan = TilingPlan(n_dim=3, m_dim=5, rows=8, cols=8)
        assert plan.total_tiles == 1

    def test_tiles_cover_everything_without_overlap(self):
        plan = TilingPlan(n_dim=20, m_dim=13, rows=8, cols=8)
        covered = np.zeros((20, 13), dtype=int)
        for spec in plan.tiles():
            covered[spec.n_start : spec.n_stop, spec.m_start : spec.m_stop] += 1
        assert np.all(covered == 1)

    def test_tile_spec_sizes(self):
        plan = TilingPlan(n_dim=10, m_dim=10, rows=8, cols=8)
        sizes = {(spec.n_size, spec.m_size) for spec in plan.tiles()}
        assert sizes == {(8, 8), (8, 2), (2, 8), (2, 2)}

    def test_tile_count_helper_consistency(self):
        plan = TilingPlan(n_dim=300, m_dim=700, rows=128, cols=128)
        assert plan.total_tiles == tile_count(300, 700, 128, 128)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            TilingPlan(n_dim=0, m_dim=1, rows=8, cols=8)


class TestTiledExecution:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_result_matches_numpy(self, k):
        a_matrix, b_matrix = random_int_matrices(9, 20, 13, seed=k)
        result = run_tiled_gemm(a_matrix, b_matrix, rows=8, cols=8, collapse_depth=k)
        assert np.array_equal(result.output, a_matrix @ b_matrix)

    def test_total_cycles_are_per_tile_times_tiles(self):
        """Eq. (4): the tiled latency is the per-tile latency times the tile count."""
        a_matrix, b_matrix = random_int_matrices(6, 20, 13, seed=7)
        result = run_tiled_gemm(a_matrix, b_matrix, rows=8, cols=8, collapse_depth=2)
        expected_tiles = tile_count(20, 13, 8, 8)
        assert result.tiles == expected_tiles
        assert result.total_cycles == expected_tiles * arrayflex_tile_cycles(8, 8, 6, 2)

    def test_stats_merged_across_tiles(self):
        a_matrix, b_matrix = random_int_matrices(5, 20, 10, seed=2)
        result = run_tiled_gemm(a_matrix, b_matrix, rows=8, cols=8, collapse_depth=1)
        assert result.stats.tiles_executed == result.tiles
        assert result.stats.mac_operations > 0

    def test_conventional_variant(self):
        a_matrix, b_matrix = random_int_matrices(4, 12, 9, seed=5)
        result = run_tiled_gemm(
            a_matrix, b_matrix, rows=8, cols=8, collapse_depth=1, configurable=False
        )
        assert np.array_equal(result.output, a_matrix @ b_matrix)
        assert result.stats.gated_register_cycles == 0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_tiled_gemm(np.ones((3, 4)), np.ones((5, 2)), rows=8, cols=8)

    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(1, 10),
        st.integers(1, 20),
        st.integers(1, 20),
        st.sampled_from([1, 2, 4]),
        st.integers(0, 100),
    )
    def test_property_tiled_equals_numpy(self, t_rows, n_dim, m_dim, k, seed):
        a_matrix, b_matrix = random_int_matrices(t_rows, n_dim, m_dim, seed=seed)
        result = run_tiled_gemm(a_matrix, b_matrix, rows=4, cols=4, collapse_depth=k)
        assert np.array_equal(result.output, a_matrix @ b_matrix)
