"""Shared backend-parity harness.

Every backend registered in :data:`repro.backends.BACKENDS` must produce
*numerically interchangeable* schedules: the batched backend bit-exactly,
the cycle-accurate and sampled backends because the simulator is
cycle-exact with respect to Eqs. (1)/(3) (and the sampled estimator is
exact whenever the engine's tile latency is content-independent, which
the engine guarantees).  Instead of one hand-written test class per
backend, this module defines the *matrix* — every registered backend x a
set of workloads chosen to exercise edge tiles, repeated shapes, tiny
and probe-length streamed dimensions x several array configurations —
and the assertion bundle each cell must pass against the analytical
reference.

``tests/test_backends.py`` parametrises over :func:`parity_cases` and
:data:`BACKEND_FACTORIES`; a future backend added to ``BACKENDS`` gets
full parity coverage by adding one factory line here (and the
registry-completeness test fails loudly until it does).

The workloads are deliberately small: the cycle-accurate backend
simulates real tiles, so the matrix keeps T and the array sizes in the
regime where a full parity sweep costs well under a second per backend.
"""

from repro.backends import (
    AnalyticalBackend,
    BatchedCachedBackend,
    CycleAccurateBackend,
    SampledSimBackend,
    model_totals,
)
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape

#: One factory per registered backend, building a test-tuned instance.
#: ``tests/test_backends.py`` asserts this dict covers ``BACKENDS``
#: exactly, so registering a backend without harness coverage fails.
BACKEND_FACTORIES = {
    "analytical": AnalyticalBackend,
    "batched": BatchedCachedBackend,
    "cycle": CycleAccurateBackend,
    # A fixed seed keeps the sampled estimates deterministic; the default
    # probe cap (32) makes the "tall-t" workload exercise the calibrated
    # streaming-probe extrapolation inside the parity matrix.
    "sampled": lambda: SampledSimBackend(sample_seed=0),
}


def make_backend(name: str):
    """Fresh test-tuned instance of one registered backend."""
    return BACKEND_FACTORIES[name]()


def parity_configs() -> dict[str, ArrayFlexConfig]:
    """The configuration axis of the parity matrix."""
    return {
        "8x8": ArrayFlexConfig(rows=8, cols=8, supported_depths=(1, 2, 4)),
        "16x16-k12": ArrayFlexConfig(rows=16, cols=16, supported_depths=(1, 2)),
        # An activity model that prices per-layer utilization: parity must
        # hold for the whole LayerMetrics record, not just the timing.
        "8x8-util": ArrayFlexConfig(
            rows=8, cols=8, supported_depths=(1, 2, 4),
            activity_model="utilization",
        ),
    }


def parity_workloads() -> dict[str, list[GemmShape]]:
    """The workload axis: edge tiles, repeats, tiny and probe-length T."""
    return {
        # Edge tiles in every combination (N' and/or M' partial), plus an
        # exactly-tiling layer and a repeated shape.
        "mixed": [
            GemmShape(m=20, n=33, t=6, name="edge-both"),
            GemmShape(m=16, n=16, t=40, name="exact"),
            GemmShape(m=7, n=50, t=3, name="edge-n"),
            GemmShape(m=64, n=12, t=17, name="edge-m"),
            GemmShape(m=20, n=33, t=6, name="edge-both-repeat"),
        ],
        # T beyond twice the sampled backend's probe cap: exercises the
        # calibrated affine-in-T extrapolation against full simulation.
        "tall-t": [
            GemmShape(m=24, n=40, t=300, name="tall-a"),
            GemmShape(m=12, n=20, t=150, name="tall-b"),
        ],
        # Degenerate dimensions (T=1 decode-style rows, single tiles).
        "tiny": [
            GemmShape(m=3, n=5, t=1, name="tiny-a"),
            GemmShape(m=8, n=8, t=2, name="tiny-b"),
        ],
    }


def parity_cases() -> list[tuple[str, str, str]]:
    """All (case_id, workload_key, config_key) cells of the matrix."""
    return [
        (f"{workload_key}-{config_key}", workload_key, config_key)
        for workload_key in parity_workloads()
        for config_key in parity_configs()
    ]


def assert_backend_parity(backend, workload, config, reference=None) -> None:
    """The assertion bundle one (backend, workload, config) cell must pass.

    The reference is the analytical backend (the closed forms the paper
    states); ``LayerMetrics`` equality covers mode decisions, cycles,
    operating points, activity, utilization and the full per-component
    power breakdown (``error_bound`` is estimate metadata and excluded
    from equality by the record itself).
    """
    reference = reference or AnalyticalBackend()
    name = "parity"

    expected = reference.schedule_model(workload, config, model_name=name)
    actual = backend.schedule_model(workload, config, model_name=name)
    assert actual.layers == expected.layers
    assert actual.total_cycles == expected.total_cycles
    assert actual.total_time_ns == expected.total_time_ns
    assert actual.total_energy_nj == expected.total_energy_nj

    conventional = backend.schedule_model_conventional(
        workload, config, model_name=name
    )
    assert conventional.layers == reference.schedule_model_conventional(
        workload, config, model_name=name
    ).layers

    single = backend.schedule_layer(workload[0], config, index=1)
    assert single == reference.schedule_layer(workload[0], config, index=1)

    totals = model_totals(backend, workload, config, model_name=name)
    assert totals.time_ns == expected.total_time_ns
    assert totals.energy_nj == expected.total_energy_nj
