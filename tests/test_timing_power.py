"""Tests for the power model (Fig. 9 substitute)."""

import pytest
from hypothesis import given, strategies as st

from repro.timing.power_model import PowerModel
from repro.timing.technology import TechnologyModel


@pytest.fixture(scope="module")
def power():
    return PowerModel(TechnologyModel.default_28nm())


class TestPEEnergy:
    def test_conventional_has_no_csa_or_mux_energy(self, power):
        breakdown = power.conventional_pe_energy()
        assert breakdown.carry_save_adder == 0.0
        assert breakdown.bypass_muxes == 0.0

    def test_arrayflex_k1_has_overhead_energy(self, power):
        conventional = power.conventional_pe_energy().total
        arrayflex_k1 = power.arrayflex_pe_energy(1).total
        assert arrayflex_k1 > conventional

    def test_energy_decreases_with_depth(self, power):
        """Deeper collapse -> more registers gated, fewer CPAs active."""
        e1 = power.arrayflex_pe_energy(1).total
        e2 = power.arrayflex_pe_energy(2).total
        e4 = power.arrayflex_pe_energy(4).total
        assert e1 > e2 > e4

    def test_cpa_energy_scales_inverse_k(self, power):
        e1 = power.arrayflex_pe_energy(1).carry_propagate_adder
        e4 = power.arrayflex_pe_energy(4).carry_propagate_adder
        assert e4 == pytest.approx(e1 / 4)

    def test_register_clock_energy_drops_with_gating(self, power):
        e1 = power.arrayflex_pe_energy(1).register_clock
        e4 = power.arrayflex_pe_energy(4).register_clock
        assert e4 < e1

    def test_multiplier_energy_independent_of_depth(self, power):
        assert power.arrayflex_pe_energy(1).multiplier == power.arrayflex_pe_energy(4).multiplier

    def test_activity_scales_datapath_not_clock(self, power):
        full = power.conventional_pe_energy(activity=1.0)
        half = power.conventional_pe_energy(activity=0.5)
        assert half.multiplier == pytest.approx(full.multiplier / 2)
        assert half.register_clock == pytest.approx(full.register_clock)

    def test_breakdown_total_is_sum(self, power):
        breakdown = power.arrayflex_pe_energy(2)
        parts = breakdown.as_dict()
        total = parts.pop("total")
        assert total == pytest.approx(sum(parts.values()))

    def test_invalid_activity(self, power):
        with pytest.raises(ValueError):
            power.conventional_pe_energy(activity=1.5)
        with pytest.raises(ValueError):
            power.arrayflex_pe_energy(2, activity=-0.1)

    def test_invalid_depth(self, power):
        with pytest.raises(ValueError):
            power.arrayflex_pe_energy(0)

    @given(st.integers(1, 16))
    def test_energy_positive_for_any_depth(self, k):
        power = PowerModel()
        assert power.arrayflex_pe_energy(k).total > 0


class TestLeakage:
    def test_arrayflex_leaks_more(self, power):
        """Leakage tracks the ~16% area overhead."""
        ratio = power.arrayflex_pe_leakage_mw() / power.conventional_pe_leakage_mw()
        assert ratio == pytest.approx(1.16, abs=0.03)

    def test_leakage_small_versus_dynamic(self, power):
        dynamic = power.conventional_pe_energy().total * 2.0  # mW at 2 GHz
        assert power.conventional_pe_leakage_mw() < 0.05 * dynamic


class TestArrayPower:
    def test_paper_mode_power_ordering(self, power):
        """ArrayFlex in normal mode costs more power than the conventional SA;
        in shallow modes it costs less (Section IV-B)."""
        conventional = power.conventional_array_power_mw(128, 128, 2.0)
        k1 = power.arrayflex_array_power_mw(128, 128, 1, 1.8)
        k2 = power.arrayflex_array_power_mw(128, 128, 2, 1.7)
        k4 = power.arrayflex_array_power_mw(128, 128, 4, 1.4)
        assert k1 > conventional
        assert k2 < conventional
        assert k4 < k2

    def test_shallow_savings_in_paper_band(self, power):
        conventional = power.conventional_array_power_mw(128, 128, 2.0)
        k4 = power.arrayflex_array_power_mw(128, 128, 4, 1.4)
        saving = 1 - k4 / conventional
        assert 0.15 < saving < 0.40

    def test_power_scales_with_pe_count(self, power):
        small = power.conventional_array_power_mw(8, 8, 2.0)
        large = power.conventional_array_power_mw(16, 16, 2.0)
        assert large == pytest.approx(4 * small)

    def test_power_scales_with_frequency(self, power):
        """Dynamic power is linear in f; leakage adds a constant offset."""
        leak = 128 * 128 * power.conventional_pe_leakage_mw()
        full = power.conventional_array_power_mw(128, 128, 2.0) - leak
        half = power.conventional_array_power_mw(128, 128, 1.0) - leak
        assert full == pytest.approx(2 * half)

    def test_invalid_array_arguments(self, power):
        with pytest.raises(ValueError):
            power.conventional_array_power_mw(0, 8, 2.0)
        with pytest.raises(ValueError):
            power.arrayflex_array_power_mw(8, 8, 2, 0.0)

    def test_absolute_magnitude_plausible(self, power):
        """A 128x128 32-bit MAC array at 2 GHz should land in the tens-of-watts
        range, not milliwatts or kilowatts."""
        watts = power.conventional_array_power_mw(128, 128, 2.0) / 1000.0
        assert 20.0 < watts < 400.0


class TestArrayPowerBreakdown:
    """The breakdown-returning array power paths behind LayerMetrics."""

    def test_total_matches_scalar_path_bitwise(self, power):
        for activity in (1.0, 0.625, 0.1):
            breakdown = power.arrayflex_array_power_breakdown(
                128, 128, 2, 1.7, activity=activity
            )
            assert breakdown.total_mw == power.arrayflex_array_power_mw(
                128, 128, 2, 1.7, activity=activity
            )
            conventional = power.conventional_array_power_breakdown(
                128, 128, 2.0, activity=activity
            )
            assert conventional.total_mw == power.conventional_array_power_mw(
                128, 128, 2.0, activity=activity
            )

    def test_components_sum_to_total(self, power):
        breakdown = power.arrayflex_array_power_breakdown(64, 64, 4, 1.4, activity=0.8)
        parts = breakdown.as_dict()
        total = parts.pop("total")
        assert total == pytest.approx(sum(parts.values()))

    def test_activity_scales_datapath_components_only(self, power):
        full = power.arrayflex_array_power_breakdown(128, 128, 2, 1.7, activity=1.0)
        half = power.arrayflex_array_power_breakdown(128, 128, 2, 1.7, activity=0.5)
        for component in full.DATAPATH_COMPONENTS:
            assert getattr(half, component) == pytest.approx(
                getattr(full, component) / 2
            )
        assert half.register_clock == full.register_clock
        assert half.leakage == full.leakage
        assert half.datapath_mw == pytest.approx(full.datapath_mw / 2)

    def test_conventional_has_no_csa_or_mux_power(self, power):
        breakdown = power.conventional_array_power_breakdown(16, 16, 2.0)
        assert breakdown.carry_save_adder == 0.0
        assert breakdown.bypass_muxes == 0.0

    @pytest.mark.parametrize("activity", [-0.1, 1.0000001, 2.0, float("nan")])
    def test_breakdown_rejects_out_of_range_activity(self, power, activity):
        with pytest.raises(ValueError):
            power.arrayflex_array_power_breakdown(8, 8, 2, 1.7, activity=activity)
        with pytest.raises(ValueError):
            power.conventional_array_power_breakdown(8, 8, 2.0, activity=activity)

    def test_breakdown_validates_array_and_frequency(self, power):
        with pytest.raises(ValueError):
            power.arrayflex_array_power_breakdown(0, 8, 2, 1.7)
        with pytest.raises(ValueError):
            power.arrayflex_array_power_breakdown(8, -1, 2, 1.7)
        with pytest.raises(ValueError):
            power.conventional_array_power_breakdown(8, 8, 0.0)
        with pytest.raises(ValueError):
            power.arrayflex_array_power_breakdown(8, 8, 0, 1.7)
