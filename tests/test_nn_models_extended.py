"""Tests for the extended model zoo (ResNet-50, VGG-16) and its scheduling."""

import pytest

from repro.core.arrayflex import ArrayFlexAccelerator
from repro.nn.layers import Conv2dLayer, LinearLayer
from repro.nn.models import extended_model_zoo, resnet50, vgg16


class TestResNet50:
    @pytest.fixture(scope="class")
    def model(self):
        return resnet50()

    def test_layer_count(self, model):
        """Stem + 16 bottleneck blocks x 3 convs + classifier = 50 layers."""
        assert model.num_layers == 1 + 16 * 3 + 1

    def test_total_macs_in_expected_range(self, model):
        """ResNet-50 is ~4.1 GMACs at 224x224 (trunk only, no shortcuts)."""
        assert 3.4e9 < model.total_macs < 4.6e9

    def test_bottleneck_structure(self, model):
        block = [l for l in model.layers if l.name.startswith("conv3_block1")]
        assert [l.kernel_size for l in block] == [1, 3, 1]
        assert block[0].in_channels == 256
        assert block[2].out_channels == 512

    def test_final_stage_resolution(self, model):
        last_conv = [l for l in model.layers if isinstance(l, Conv2dLayer)][-1]
        assert last_conv.output_pixels == 49

    def test_classifier_width(self, model):
        fc = model.layers[-1]
        assert isinstance(fc, LinearLayer)
        assert fc.in_features == 2048


class TestVGG16:
    @pytest.fixture(scope="class")
    def model(self):
        return vgg16()

    def test_layer_count(self, model):
        assert model.num_layers == 13 + 3

    def test_total_macs_in_expected_range(self, model):
        """VGG-16 is ~15.5 GMACs at 224x224."""
        assert 13e9 < model.total_macs < 17e9

    def test_classifier_sizes(self, model):
        fc6 = model.layers[13]
        assert isinstance(fc6, LinearLayer)
        assert fc6.in_features == 512 * 7 * 7
        assert model.layers[-1].out_features == 1000

    def test_large_t_everywhere(self, model):
        """Every VGG conv keeps a large spatial resolution (T >= 49)."""
        for gemm in model.gemms()[:13]:
            assert gemm.t >= 14 * 14


class TestExtendedZooScheduling:
    def test_zoo_contains_five_models(self):
        assert set(extended_model_zoo()) == {
            "ResNet-34",
            "MobileNetV1",
            "ConvNeXt-T",
            "ResNet-50",
            "VGG-16",
        }

    def test_resnet50_benefits_from_arrayflex(self):
        report = ArrayFlexAccelerator(rows=128, cols=128).compare_with_conventional(resnet50())
        assert report.latency_saving > 0.04
        assert report.edp_gain > 1.2

    def test_vgg16_mode_split_follows_eq7(self):
        """VGG's convolutions keep a huge spatial T, so they never pick the
        deepest collapse; its single-token fully-connected layers (T = 1) are
        pure fill/drain and always pick k = 4 -- exactly the workload
        dependence Eq. (7) predicts."""
        accel = ArrayFlexAccelerator(rows=128, cols=128)
        schedule = accel.run_model(vgg16())
        conv_depths = [layer.collapse_depth for layer in schedule.layers[:13]]
        fc_depths = [layer.collapse_depth for layer in schedule.layers[13:]]
        assert set(conv_depths) <= {1, 2}
        assert conv_depths[:4] == [1, 1, 1, 1]
        assert fc_depths == [4, 4, 4]

    def test_vgg16_benefits_from_arrayflex(self):
        report = ArrayFlexAccelerator(rows=128, cols=128).compare_with_conventional(vgg16())
        assert report.latency_saving > 0.05
        assert report.edp_gain > 1.2
