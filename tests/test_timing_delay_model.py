"""Tests for the clock-period model (Eq. 5) and operating points."""

import pytest
from hypothesis import given, strategies as st

from repro.timing.delay_model import DelayModel
from repro.timing.technology import TechnologyModel


@pytest.fixture(scope="module")
def model():
    return DelayModel(TechnologyModel.default_28nm())


class TestEquation5:
    def test_conventional_period(self, model):
        assert model.conventional_clock_period_ps() == pytest.approx(500.0)

    @pytest.mark.parametrize("k, expected", [(1, 550.0), (2, 600.0), (3, 650.0), (4, 700.0)])
    def test_collapsed_periods(self, model, k, expected):
        assert model.clock_period_ps(k) == pytest.approx(expected)

    def test_depth_zero_rejected(self, model):
        with pytest.raises(ValueError):
            model.clock_period_ps(0)

    @given(st.integers(1, 64))
    def test_period_linear_in_depth(self, k):
        model = DelayModel()
        tech = model.technology
        expected = tech.baseline_path_ps + k * tech.collapse_increment_ps
        assert model.clock_period_ps(k) == pytest.approx(expected)

    @given(st.integers(1, 16))
    def test_csa_version_never_slower_than_cpa_version(self, k):
        """The carry-save datapath is the faster option for every depth."""
        model = DelayModel()
        assert model.clock_period_ps(k) <= model.clock_period_ps_without_csa(k) + 1e-9 or k == 1

    def test_no_csa_k1_slightly_faster(self, model):
        """With k = 1, the no-CSA datapath skips the CSA stage and is a bit
        faster -- that is exactly the conventional PE's advantage."""
        assert model.clock_period_ps_without_csa(1) < model.clock_period_ps(1)

    def test_no_csa_degrades_much_faster(self, model):
        with_csa_slope = model.clock_period_ps(4) - model.clock_period_ps(1)
        without_slope = model.clock_period_ps_without_csa(4) - model.clock_period_ps_without_csa(1)
        assert without_slope > 2 * with_csa_slope


class TestFrequencies:
    def test_paper_operating_points(self, model):
        """Section IV: 2.0 / 1.8 / 1.7 / 1.4 GHz."""
        assert model.conventional_operating_point().clock_frequency_ghz == pytest.approx(2.0)
        assert model.arrayflex_operating_point(1).clock_frequency_ghz == pytest.approx(1.8)
        assert model.arrayflex_operating_point(2).clock_frequency_ghz == pytest.approx(1.7)
        assert model.arrayflex_operating_point(4).clock_frequency_ghz == pytest.approx(1.4)

    def test_unrounded_frequency(self, model):
        freq = model.frequency_ghz(550.0, rounded=False)
        assert freq == pytest.approx(1.8181818, rel=1e-6)

    def test_frequency_requires_positive_period(self, model):
        with pytest.raises(ValueError):
            model.frequency_ghz(0.0)

    def test_operating_point_period_consistent_with_frequency(self, model):
        point = model.arrayflex_operating_point(2)
        assert point.clock_period_ps == pytest.approx(1000.0 / point.clock_frequency_ghz)

    def test_operating_points_sorted_unique(self, model):
        points = model.operating_points((4, 1, 2, 2))
        assert [p.collapse_depth for p in points] == [1, 2, 4]

    def test_describe_mentions_kind(self, model):
        assert "conventional" in model.conventional_operating_point().describe()
        assert "ArrayFlex" in model.arrayflex_operating_point(2).describe()

    def test_unit_conversions(self, model):
        point = model.conventional_operating_point()
        assert point.clock_period_s == pytest.approx(500e-12)
        assert point.clock_frequency_hz == pytest.approx(2.0e9)


class TestDelayRatio:
    def test_delay_ratio_is_ten(self, model):
        """(d_FF + d_mul + d_add) / (d_CSA + 2 d_mux) = 500 / 50 = 10, the
        factor entering Eq. (7)."""
        assert model.delay_ratio() == pytest.approx(10.0)

    def test_delay_ratio_tracks_technology(self):
        tech = TechnologyModel.from_overrides(d_csa_ps=40.0, d_mux_ps=30.0)
        assert DelayModel(tech).delay_ratio() == pytest.approx(500.0 / 100.0)
