"""Tests for the EXPERIMENTS.md generator."""

from pathlib import Path

import pytest

from repro.eval.paper_report import generate_experiments_markdown, write_experiments_markdown


@pytest.fixture(scope="module")
def markdown():
    return generate_experiments_markdown()


class TestContent:
    def test_every_paper_artifact_has_a_section(self, markdown):
        for heading in (
            "## Operating points",
            "## Fig. 5",
            "## Fig. 6",
            "## Fig. 7",
            "## Fig. 8",
            "## Fig. 9",
            "## Eq. (7)",
            "## Ablations",
        ):
            assert heading in markdown

    def test_mentions_all_three_models(self, markdown):
        for model in ("ResNet-34", "MobileNetV1", "ConvNeXt-T"):
            assert model in markdown

    def test_paper_frequencies_present(self, markdown):
        assert "| conventional | 2.0 | 2.0 |" in markdown

    def test_regeneration_instructions_present(self, markdown):
        assert "generate_experiments_report.py" in markdown

    def test_markdown_tables_well_formed(self, markdown):
        """Every markdown table row has the same number of columns as its header."""
        lines = markdown.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("|") and i + 1 < len(lines) and set(lines[i + 1]) <= {"|", "-", " "}:
                header_cols = line.count("|")
                j = i + 2
                while j < len(lines) and lines[j].startswith("|"):
                    assert lines[j].count("|") == header_cols, lines[j]
                    j += 1


class TestWriting:
    def test_write_round_trip(self, tmp_path):
        target = tmp_path / "EXPERIMENTS.md"
        content = write_experiments_markdown(str(target))
        assert target.read_text(encoding="utf-8") == content

    def test_repo_copy_is_up_to_date_in_structure(self):
        """The committed EXPERIMENTS.md contains the same section headings as a
        freshly generated one (numbers may drift with calibration changes)."""
        repo_copy = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
        assert repo_copy.exists(), "EXPERIMENTS.md missing from the repository root"
        committed = repo_copy.read_text(encoding="utf-8")
        for heading in ("## Fig. 5", "## Fig. 9", "## Ablations"):
            assert heading in committed
