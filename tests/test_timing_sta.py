"""Tests for the netlist-based static timing analysis."""

import pytest
from hypothesis import given, strategies as st

from repro.timing.delay_model import DelayModel
from repro.timing.sta import PipelineBlockNetlist, StaticTimingAnalyzer
from repro.timing.technology import TechnologyModel


@pytest.fixture(scope="module")
def netlist4():
    return PipelineBlockNetlist(kmax=4)


@pytest.fixture(scope="module")
def analyzer4(netlist4):
    return StaticTimingAnalyzer(netlist4)


class TestNetlistStructure:
    def test_node_count_scales_with_kmax(self):
        small = PipelineBlockNetlist(kmax=2)
        large = PipelineBlockNetlist(kmax=4)
        assert large.graph.number_of_nodes() > small.graph.number_of_nodes()

    def test_contains_expected_cells(self, netlist4):
        cells = {data["cell"] for _, data in netlist4.graph.nodes(data=True)}
        assert cells == {"ff", "mux", "mul", "csa", "add"}

    def test_acyclic(self, netlist4):
        import networkx as nx

        assert nx.is_directed_acyclic_graph(netlist4.graph)

    def test_invalid_kmax(self):
        with pytest.raises(ValueError):
            PipelineBlockNetlist(kmax=0)

    def test_paths_beyond_configured_depth_exist(self, netlist4):
        assert netlist4.combinational_paths_exist_beyond(2)
        assert not netlist4.combinational_paths_exist_beyond(4)


class TestCriticalPath:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_eq5(self, analyzer4, k):
        """The STA longest path equals the closed-form Eq. (5)."""
        expected = DelayModel(analyzer4.technology).clock_period_ps(k)
        assert analyzer4.minimum_clock_period_ps(k) == pytest.approx(expected)

    def test_path_ends_at_capture_ff(self, analyzer4):
        path = analyzer4.critical_path(2)
        assert path.nodes[-1].endswith("capture_ff")
        assert path.nodes[0] == "launch_ff"

    def test_path_visits_one_multiplier(self, analyzer4):
        path = analyzer4.critical_path(3)
        muls = [n for n in path.nodes if n.endswith("/mul")]
        assert len(muls) == 1

    def test_path_visits_k_csas(self, analyzer4):
        for k in (1, 2, 4):
            path = analyzer4.critical_path(k)
            csas = [n for n in path.nodes if n.endswith("/csa")]
            assert len(csas) == k

    def test_depth_outside_range_rejected(self, analyzer4):
        with pytest.raises(ValueError):
            analyzer4.critical_path(0)
        with pytest.raises(ValueError):
            analyzer4.critical_path(5)

    def test_num_cells_excludes_ffs(self, analyzer4):
        path = analyzer4.critical_path(1)
        assert path.num_cells == len(path.nodes) - 2

    @given(st.integers(1, 6), st.data())
    def test_eq5_agreement_random_technologies(self, kmax, data):
        """Eq. (5) and STA agree for arbitrary (positive) cell delays."""
        tech = TechnologyModel.from_overrides(
            d_mul_ps=data.draw(st.floats(50, 800)),
            d_add_ps=data.draw(st.floats(20, 400)),
            d_csa_ps=data.draw(st.floats(5, 100)),
            d_mux_ps=data.draw(st.floats(2, 60)),
            d_ff_ps=data.draw(st.floats(10, 120)),
        )
        analyzer = StaticTimingAnalyzer(PipelineBlockNetlist(kmax=kmax, technology=tech))
        delay_model = DelayModel(tech)
        k = data.draw(st.integers(1, kmax))
        assert analyzer.minimum_clock_period_ps(k) == pytest.approx(
            delay_model.clock_period_ps(k)
        )


class TestFalsePaths:
    def test_false_paths_at_shallow_configurations(self, analyzer4):
        """Configuring fewer collapsed stages leaves unused combinational
        edges that must be excluded -- exactly the paper's STA methodology."""
        assert analyzer4.false_path_count(1) > analyzer4.false_path_count(2) > 0
        assert analyzer4.false_path_count(4) == 0

    def test_false_path_count_k1(self, analyzer4):
        # Every inter-PE bypass edge (vertical and horizontal) is false at k = 1.
        assert analyzer4.false_path_count(1) == 2 * (4 - 1)
