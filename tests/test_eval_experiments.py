"""Tests for the experiment harness (one object per paper figure)."""

import pytest

from repro.eval.experiments import (
    ClockFrequencyExperiment,
    CsaAblationExperiment,
    DirectionAblationExperiment,
    Eq7ValidationExperiment,
    Fig5Experiment,
    Fig6Experiment,
    Fig7Experiment,
    Fig8Experiment,
    Fig9Experiment,
    TransformerSuiteExperiment,
    all_experiments,
)


class TestFig5:
    def test_only_paper_layers_accepted(self):
        with pytest.raises(ValueError):
            Fig5Experiment(layer_index=5)

    def test_layer20_minimum_at_k2(self):
        result = Fig5Experiment(layer_index=20).run()
        assert result.best_depth == 2

    def test_layer28_minimum_at_k4(self):
        result = Fig5Experiment(layer_index=28).run()
        assert result.best_depth == 4

    def test_render_mentions_conventional_reference(self):
        text = Fig5Experiment(layer_index=20).render()
        assert "conventional" in text
        assert "132x132" in text


class TestFig6:
    def test_overhead_close_to_paper(self):
        result = Fig6Experiment().run()
        assert result.pe_overhead == pytest.approx(0.16, abs=0.02)

    def test_render_contains_both_designs(self):
        text = Fig6Experiment().render()
        assert "conventional PE" in text and "ArrayFlex PE" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return Fig7Experiment().run()

    def test_total_saving_band(self, result):
        assert 0.06 < result.total_saving < 0.16

    def test_layer_count_preserved(self, result):
        assert len(result.arrayflex.layers) == len(result.conventional.layers) == 59

    def test_early_layers_normal_late_layers_deep(self, result):
        assert result.depth_of_layer(1) == 1
        assert result.depth_of_layer(len(result.arrayflex.layers) - 1) == 4

    def test_per_layer_savings_list_length(self, result):
        assert len(result.per_layer_savings()) == 59

    def test_render_footer_totals(self, result):
        text = Fig7Experiment().render(result)
        assert "total:" in text


class TestFig8AndFig9:
    @pytest.fixture(scope="class")
    def fig8(self):
        return Fig8Experiment(sizes=(128,)).run()

    @pytest.fixture(scope="class")
    def fig9(self):
        return Fig9Experiment(sizes=(128,)).run()

    def test_fig8_entry_per_model(self, fig8):
        assert len(fig8.entries) == 3

    def test_fig8_savings_positive(self, fig8):
        low, high = fig8.savings_range()
        assert low > 0.0 and high < 0.25

    def test_fig9_power_savings_positive(self, fig9):
        low, high = fig9.power_saving_range(128)
        assert low > 0.0 and high < 0.30

    def test_fig9_mode_time_shares_sum_to_one(self, fig9):
        for entry in fig9.entries:
            assert sum(entry.mode_time_share.values()) == pytest.approx(1.0)

    def test_renders_are_non_empty(self, fig8, fig9):
        assert "Fig. 8" in Fig8Experiment(sizes=(128,)).render(fig8)
        assert "Fig. 9" in Fig9Experiment(sizes=(128,)).render(fig9)


class TestOtherExperiments:
    def test_eq7_agreement_high(self):
        result = Eq7ValidationExperiment().run()
        assert result.agreement_rate >= 0.8

    def test_clock_experiment_paper_frequencies(self):
        result = ClockFrequencyExperiment().run()
        assert result.conventional_ghz == pytest.approx(2.0)
        assert result.mode_ghz[4] == pytest.approx(1.4)

    def test_csa_ablation_shows_csa_benefit(self):
        result = CsaAblationExperiment().run()
        deepest = max(result.entries, key=lambda e: e.collapse_depth)
        assert deepest.model_saving_with_csa > deepest.model_saving_without_csa

    def test_direction_ablation_both_wins(self):
        result = DirectionAblationExperiment().run()
        for entry in result.entries:
            assert entry.cycles_both < min(
                entry.cycles_vertical_only, entry.cycles_horizontal_only
            )

    def test_all_experiments_run_and_render(self):
        """Smoke test: every experiment exposes the same minimal interface."""
        for experiment in all_experiments():
            assert hasattr(experiment, "experiment_id")
            assert isinstance(experiment.paper_reference, dict)
            text = experiment.render()
            assert isinstance(text, str) and text


class TestTransformerSuite:
    @pytest.fixture(scope="class")
    def result(self):
        return TransformerSuiteExperiment(sizes=(128,)).run()

    def test_covers_all_three_workloads_with_phases(self, result):
        assert {(e.workload_name, e.phase) for e in result.entries} == {
            ("BERT-Base", "prefill"),
            ("ViT-B/16", "prefill"),
            ("GPT-2-decode", "decode"),
        }

    def test_every_workload_saves_latency(self, result):
        low, high = result.savings_range()
        assert 0.0 < low <= high < 1.0

    def test_decode_saves_most(self, result):
        """T = batch decode is the small-T regime collapsing pays off in."""
        savings = {e.workload_name: e.latency_saving for e in result.entries}
        assert savings["GPT-2-decode"] == max(savings.values())

    def test_render_mentions_workloads(self, result):
        text = TransformerSuiteExperiment(sizes=(128,)).render(result)
        assert "BERT-Base" in text and "decode" in text

    def test_batched_backend_matches_analytical(self):
        fast = TransformerSuiteExperiment(sizes=(128,), backend="batched").run()
        reference = TransformerSuiteExperiment(sizes=(128,), backend="analytical").run()
        assert fast == reference
