"""Tests for the conventional and configurable processing elements."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.control import PEConfigBits
from repro.arch.pe import ConfigurablePE, ConventionalPE


class TestConventionalPE:
    def test_multiply_accumulate(self):
        pe = ConventionalPE(0, 0)
        pe.load_weight(3)
        outputs = pe.evaluate(activation_in=5, psum_in=10)
        assert outputs.sum_out == 25
        assert outputs.carry_out == 0
        assert outputs.resolved

    def test_activation_passes_through(self):
        pe = ConventionalPE(0, 0)
        pe.load_weight(2)
        outputs = pe.evaluate(7, 0)
        assert outputs.activation_out == 7

    def test_registers_capture_on_clock(self):
        pe = ConventionalPE(0, 0)
        pe.load_weight(2)
        pe.evaluate(7, 1)
        pe.clock_edge()
        assert pe.psum_reg.stored_value == 15
        assert pe.activation_reg.stored_value == 7

    def test_mac_counter(self):
        pe = ConventionalPE(0, 0)
        pe.load_weight(1)
        for _ in range(5):
            pe.evaluate(1, 0)
        assert pe.mac_count == 5

    def test_negative_weight(self):
        pe = ConventionalPE(0, 0)
        pe.load_weight(-4)
        assert pe.evaluate(6, 0).sum_out == -24


class TestConfigurablePE:
    def test_default_config_is_opaque(self):
        pe = ConfigurablePE(0, 0)
        assert not pe.config.vertical_transparent
        assert not pe.config.horizontal_transparent
        assert pe.gated_register_count == 0

    def test_opaque_mode_resolves_sum(self):
        pe = ConfigurablePE(0, 0)
        pe.load_weight(3)
        outputs = pe.evaluate(activation_in=5, sum_in=10, carry_in=7)
        assert outputs.resolved
        assert outputs.sum_out == 3 * 5 + 10 + 7
        assert outputs.carry_out == 0

    def test_transparent_mode_keeps_carry_save_pair(self):
        pe = ConfigurablePE(0, 0, config=PEConfigBits(False, True), use_bitlevel=True)
        pe.load_weight(3)
        outputs = pe.evaluate(activation_in=5, sum_in=10, carry_in=7)
        assert not outputs.resolved
        # The pair is redundant but its value is exact.
        assert outputs.value == 3 * 5 + 10 + 7

    def test_configure_updates_register_transparency(self):
        pe = ConfigurablePE(0, 0)
        pe.configure(PEConfigBits(horizontal_transparent=True, vertical_transparent=True))
        assert pe.gated_register_count == 3  # activation + sum + carry registers
        pe.configure(PEConfigBits(False, False))
        assert pe.gated_register_count == 0

    def test_horizontal_transparency_only_gates_activation_register(self):
        pe = ConfigurablePE(0, 0, config=PEConfigBits(True, False))
        assert pe.activation_reg.transparent
        assert not pe.sum_reg.transparent

    @given(
        st.integers(-100, 100),
        st.integers(-100, 100),
        st.integers(-1000, 1000),
        st.integers(-1000, 1000),
    )
    def test_fast_and_bitlevel_paths_agree(self, weight, activation, sum_in, carry_in):
        """The functional shortcut and the bit-level CSA datapath produce the
        same resolved value."""
        fast = ConfigurablePE(0, 0, use_bitlevel=False)
        exact = ConfigurablePE(0, 0, use_bitlevel=True)
        for pe in (fast, exact):
            pe.load_weight(weight)
        fast_out = fast.evaluate(activation, sum_in, carry_in)
        exact_out = exact.evaluate(activation, sum_in, carry_in)
        assert fast_out.value == exact_out.value

    @settings(max_examples=25)
    @given(st.integers(-(2**30), 2**30), st.integers(-(2**30), 2**30))
    def test_bitlevel_32bit_products(self, weight, activation):
        pe = ConfigurablePE(0, 0, use_bitlevel=True)
        pe.load_weight(weight)
        outputs = pe.evaluate(activation, 0, 0)
        assert outputs.sum_out == weight * activation

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            ConfigurablePE(0, 0, input_width=0)
        with pytest.raises(ValueError):
            ConfigurablePE(0, 0, input_width=32, accum_width=16)

    def test_weight_wraps_to_input_width(self):
        pe = ConfigurablePE(0, 0, input_width=8, accum_width=16)
        pe.load_weight(200)
        assert pe.weight == 200 - 256
