"""Tests for the carry-propagate adder models."""

import pytest
from hypothesis import given, strategies as st

from repro.arith.adders import (
    add_ints,
    carry_lookahead_add,
    full_adder,
    half_adder,
    lookahead_logic_depth,
    ripple_carry_add,
    ripple_carry_gate_count,
    ripple_carry_logic_depth,
)
from repro.arith.fixed_point import bits_to_int, int_to_bits, wrap_to_width


class TestPrimitives:
    @pytest.mark.parametrize(
        "a, b, expected_sum, expected_carry",
        [(0, 0, 0, 0), (0, 1, 1, 0), (1, 0, 1, 0), (1, 1, 0, 1)],
    )
    def test_half_adder_truth_table(self, a, b, expected_sum, expected_carry):
        result = half_adder(a, b)
        assert (result.sum, result.carry) == (expected_sum, expected_carry)

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    @pytest.mark.parametrize("cin", [0, 1])
    def test_full_adder_truth_table(self, a, b, cin):
        result = full_adder(a, b, cin)
        assert result.sum + 2 * result.carry == a + b + cin

    def test_full_adder_rejects_non_bits(self):
        with pytest.raises(ValueError):
            full_adder(2, 0, 0)
        with pytest.raises(ValueError):
            half_adder(0, -1)


class TestRippleCarry:
    def test_simple_addition(self):
        s, carry = ripple_carry_add(int_to_bits(5, 8), int_to_bits(9, 8))
        assert bits_to_int(s) == 14
        assert carry == 0

    def test_negative_operands(self):
        s, _ = ripple_carry_add(int_to_bits(-5, 8), int_to_bits(3, 8))
        assert bits_to_int(s) == -2

    def test_overflow_wraps(self):
        s, _ = ripple_carry_add(int_to_bits(127, 8), int_to_bits(1, 8))
        assert bits_to_int(s) == -128

    def test_carry_in(self):
        s, _ = ripple_carry_add(int_to_bits(1, 8), int_to_bits(1, 8), cin=1)
        assert bits_to_int(s) == 3

    def test_mixed_widths_sign_extended(self):
        s, _ = ripple_carry_add(int_to_bits(-1, 4), int_to_bits(0, 8), width=8)
        assert bits_to_int(s) == -1

    def test_invalid_carry_in(self):
        with pytest.raises(ValueError):
            ripple_carry_add([0], [1], cin=2)

    @given(
        st.integers(-(2**31), 2**31 - 1),
        st.integers(-(2**31), 2**31 - 1),
    )
    def test_matches_python_addition_32bit(self, a, b):
        s, _ = ripple_carry_add(int_to_bits(a, 32), int_to_bits(b, 32))
        assert bits_to_int(s) == wrap_to_width(a + b, 32)


class TestCarryLookahead:
    @given(
        st.integers(-(2**31), 2**31 - 1),
        st.integers(-(2**31), 2**31 - 1),
        st.sampled_from([1, 2, 4, 8]),
    )
    def test_equivalent_to_ripple(self, a, b, block_size):
        a_bits, b_bits = int_to_bits(a, 32), int_to_bits(b, 32)
        ripple_sum, ripple_carry = ripple_carry_add(a_bits, b_bits)
        cla_sum, cla_carry = carry_lookahead_add(a_bits, b_bits, block_size=block_size)
        assert cla_sum == ripple_sum
        assert cla_carry == ripple_carry

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            carry_lookahead_add([0], [1], block_size=0)

    def test_carry_out_on_unsigned_overflow_pattern(self):
        # -1 + -1 produces a carry out of the MSB.
        _, carry = carry_lookahead_add(int_to_bits(-1, 8), int_to_bits(-1, 8))
        assert carry == 1


class TestAddInts:
    @given(st.integers(-(2**40), 2**40), st.integers(-(2**40), 2**40))
    def test_matches_wrapped_python_addition(self, a, b):
        assert add_ints(a, b, 64) == wrap_to_width(a + b, 64)

    def test_wraps_at_narrow_width(self):
        assert add_ints(100, 100, 8) == wrap_to_width(200, 8)


class TestCostModels:
    def test_gate_count_linear_in_width(self):
        assert ripple_carry_gate_count(64) == 2 * ripple_carry_gate_count(32)

    def test_gate_count_positive_width_required(self):
        with pytest.raises(ValueError):
            ripple_carry_gate_count(0)

    def test_ripple_depth_grows_linearly(self):
        assert ripple_carry_logic_depth(64) > ripple_carry_logic_depth(32)
        assert ripple_carry_logic_depth(64) == 2 * 64 + 1

    def test_lookahead_depth_much_smaller_than_ripple(self):
        assert lookahead_logic_depth(64) < ripple_carry_logic_depth(64) / 3

    def test_lookahead_depth_monotone_in_width(self):
        assert lookahead_logic_depth(64) >= lookahead_logic_depth(16)

    def test_depth_invalid_arguments(self):
        with pytest.raises(ValueError):
            ripple_carry_logic_depth(-1)
        with pytest.raises(ValueError):
            lookahead_logic_depth(8, block_size=0)
