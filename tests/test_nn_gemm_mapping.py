"""Tests for the conv -> GEMM lowering (paper Section II)."""

import pytest
from hypothesis import given, strategies as st

from repro.nn.gemm_mapping import GemmShape, layer_to_gemm, model_to_gemms
from repro.nn.layers import Conv2dLayer, LayerKind, LinearLayer
from repro.nn.models import resnet34


class TestGemmShape:
    def test_macs(self):
        assert GemmShape(m=4, n=5, t=6).macs == 120

    def test_tuple_view(self):
        assert GemmShape(m=1, n=2, t=3).as_tuple() == (1, 2, 3)

    def test_positive_dimensions_required(self):
        with pytest.raises(ValueError):
            GemmShape(m=0, n=1, t=1)

    def test_str_contains_dims(self):
        text = str(GemmShape(m=4, n=5, t=6, name="layer"))
        assert "M=4" in text and "N=5" in text and "T=6" in text


class TestConvLowering:
    def test_standard_conv(self):
        layer = Conv2dLayer(
            name="c", in_channels=256, out_channels=256, kernel_size=3, stride=1,
            padding=1, input_height=14, input_width=14,
        )
        gemm = layer_to_gemm(layer)
        assert gemm.as_tuple() == (256, 3 * 3 * 256, 196)
        assert gemm.kind is LayerKind.CONV

    def test_pointwise_conv(self):
        layer = Conv2dLayer(
            name="pw", in_channels=192, out_channels=768, kernel_size=1, stride=1,
            padding=0, input_height=28, input_width=28,
        )
        gemm = layer_to_gemm(layer)
        assert gemm.as_tuple() == (768, 192, 784)

    def test_depthwise_conv_uses_single_channel_kernels(self):
        layer = Conv2dLayer(
            name="dw", in_channels=96, out_channels=96, kernel_size=7, stride=1,
            padding=3, input_height=56, input_width=56, groups=96,
        )
        gemm = layer_to_gemm(layer)
        assert gemm.n == 49  # K*K*1, the SCALE-Sim-style approximation
        assert gemm.m == 96

    def test_strided_conv_shrinks_t(self):
        layer = Conv2dLayer(
            name="s", in_channels=64, out_channels=128, kernel_size=3, stride=2,
            padding=1, input_height=56, input_width=56,
        )
        assert layer_to_gemm(layer).t == 28 * 28

    def test_gemm_macs_equal_layer_macs_for_dense_convs(self):
        layer = Conv2dLayer(
            name="c", in_channels=64, out_channels=64, kernel_size=3, stride=1,
            padding=1, input_height=56, input_width=56,
        )
        assert layer_to_gemm(layer).macs == layer.macs

    @given(
        st.integers(1, 512),
        st.integers(1, 512),
        st.sampled_from([1, 3, 5, 7]),
        st.sampled_from([1, 2]),
        st.sampled_from([7, 14, 28, 56]),
    )
    def test_lowering_dimensions_property(self, cin, cout, kernel, stride, resolution):
        layer = Conv2dLayer(
            name="p", in_channels=cin, out_channels=cout, kernel_size=kernel,
            stride=stride, padding=kernel // 2, input_height=resolution,
            input_width=resolution,
        )
        gemm = layer_to_gemm(layer)
        assert gemm.m == cout
        assert gemm.n == kernel * kernel * cin
        assert gemm.t == layer.output_pixels


class TestLinearAndModelLowering:
    def test_linear_layer(self):
        gemm = layer_to_gemm(LinearLayer("fc", 512, 1000))
        assert gemm.as_tuple() == (1000, 512, 1)
        assert gemm.kind is LayerKind.LINEAR

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            layer_to_gemm("not a layer")  # type: ignore[arg-type]

    def test_model_lowering_preserves_order_and_names(self):
        model = resnet34()
        gemms = model_to_gemms(list(model.layers))
        assert len(gemms) == model.num_layers
        assert gemms[0].name == "conv1"
        assert gemms[-1].name == "fc"


class TestPaperQuotedShapes:
    def test_resnet34_layer20(self):
        """Section III-C: layer 20 of ResNet-34 is (M, N, T) = (256, 2304, 196)."""
        assert resnet34().gemm(20).as_tuple() == (256, 2304, 196)

    def test_resnet34_layer28(self):
        """Section III-C: layer 28 of ResNet-34 is (M, N, T) = (512, 2304, 49)."""
        assert resnet34().gemm(28).as_tuple() == (512, 2304, 49)
