"""Tests for the array multiplier model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.multiplier import (
    array_multiply,
    multiplier_gate_count,
    multiplier_logic_depth,
    partial_products,
)


class TestPartialProducts:
    def test_sum_equals_product_positive(self):
        assert sum(partial_products(7, 9, 8)) == 63

    def test_sum_equals_product_negative_multiplier(self):
        assert sum(partial_products(7, -9, 8)) == -63

    def test_sum_equals_product_both_negative(self):
        assert sum(partial_products(-7, -9, 8)) == 63

    def test_zero_multiplier(self):
        assert partial_products(5, 0, 8) == [0]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            partial_products(300, 1, 8)

    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_partial_product_sum_property(self, a, b):
        assert sum(partial_products(a, b, 8)) == a * b


class TestArrayMultiply:
    @pytest.mark.parametrize(
        "a, b, width",
        [(0, 0, 8), (1, 1, 8), (-1, 1, 8), (-1, -1, 8), (127, 127, 8), (-128, -128, 8)],
    )
    def test_corner_cases(self, a, b, width):
        assert array_multiply(a, b, width) == a * b

    def test_asymmetric_operands(self):
        assert array_multiply(-3, 7, 8) == -21

    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_8bit_matches_python(self, a, b):
        assert array_multiply(a, b, 8) == a * b

    @settings(max_examples=30)
    @given(st.integers(-(2**15), 2**15 - 1), st.integers(-(2**15), 2**15 - 1))
    def test_16bit_matches_python(self, a, b):
        assert array_multiply(a, b, 16) == a * b

    @settings(max_examples=10)
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    def test_32bit_matches_python(self, a, b):
        """The paper's 32-bit datapath: the full product always fits the
        64-bit vertical connections, so no wrapping ever occurs."""
        assert array_multiply(a, b, 32) == a * b


class TestCostModels:
    def test_gate_count_grows_quadratically(self):
        ratio = multiplier_gate_count(32) / multiplier_gate_count(16)
        assert 2.0 < ratio < 6.0

    def test_gate_count_dominates_adder(self):
        from repro.arith.adders import ripple_carry_gate_count

        assert multiplier_gate_count(32) > 10 * ripple_carry_gate_count(64)

    def test_logic_depth_monotone(self):
        assert multiplier_logic_depth(32) >= multiplier_logic_depth(16)
        assert multiplier_logic_depth(16) >= multiplier_logic_depth(8)

    def test_logic_depth_much_larger_than_csa(self):
        from repro.arith.csa import csa_logic_depth

        assert multiplier_logic_depth(32) > 5 * csa_logic_depth()

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            multiplier_gate_count(0)
        with pytest.raises(ValueError):
            multiplier_logic_depth(-4)

    def test_width_one(self):
        assert multiplier_logic_depth(1) > 0
        assert array_multiply(-1, -1, 1) == 1
