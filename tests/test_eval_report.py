"""Tests for the text rendering helpers."""

import pytest

from repro.eval.report import (
    format_percent,
    format_ratio,
    format_table,
    normalize_series,
    render_text_bars,
)


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        table = format_table(["name", "value"], [("a", 1), ("long-name", 22)])
        lines = table.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert len(set(len(line) for line in lines[:2])) <= 2

    def test_title_rendering(self):
        table = format_table(["x"], [(1,)], title="My Table")
        assert table.splitlines()[0] == "My Table"
        assert set(table.splitlines()[1]) == {"="}

    def test_float_formatting(self):
        table = format_table(["x"], [(3.14159,)])
        assert "3.142" in table

    def test_bool_formatting(self):
        table = format_table(["ok"], [(True,), (False,)])
        assert "yes" in table and "no" in table

    def test_numeric_right_alignment(self):
        table = format_table(["v"], [(1,), (1000,)])
        rows = table.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("1000")


class TestScalarFormatters:
    def test_percent(self):
        assert format_percent(0.113) == "11.3%"
        assert format_percent(0.113, digits=0) == "11%"

    def test_ratio(self):
        assert format_ratio(1.478) == "1.48x"


class TestSeriesHelpers:
    def test_normalize_to_max(self):
        assert normalize_series([1.0, 2.0, 4.0]) == [0.25, 0.5, 1.0]

    def test_normalize_to_reference(self):
        assert normalize_series([1.0, 2.0], reference=2.0) == [0.5, 1.0]

    def test_normalize_empty(self):
        assert normalize_series([]) == []

    def test_normalize_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize_series([1.0], reference=0.0)

    def test_text_bars(self):
        bars = render_text_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = bars.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_text_bars_length_mismatch(self):
        with pytest.raises(ValueError):
            render_text_bars(["a"], [1.0, 2.0])

    def test_text_bars_empty(self):
        assert render_text_bars([], []) == ""
