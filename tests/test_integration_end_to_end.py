"""End-to-end integration tests across the whole stack.

These tests tie the layers of the reproduction together:

* the closed-form latency model (Eqs. 1-4) against the vectorised
  cycle-accurate simulator against the object-per-element structural model;
* the analytical power accounting against the register-gating statistics
  the simulators measure;
* the headline paper claims against the full pipeline
  (model zoo -> GEMM lowering -> optimizer -> scheduler -> energy model).
"""

import numpy as np
import pytest

from repro import ArrayFlexAccelerator, ConventionalAccelerator
from repro.arch.array import SystolicArrayModel
from repro.core.config import ArrayFlexConfig
from repro.core.latency import LatencyModel
from repro.nn.models import convnext_tiny, mobilenet_v1, resnet34
from repro.nn.workloads import random_int_matrices
from repro.sim.systolic_sim import CycleAccurateSystolicArray
from repro.timing.power_model import PowerModel


class TestThreeWayCrossValidation:
    """Analytical model == vectorised simulator == structural model."""

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_cycles_and_values_agree(self, k):
        rows = cols = 8
        t_rows = 6
        a_tile, b_tile = random_int_matrices(t_rows, rows, cols, seed=k)

        analytical = LatencyModel(
            ArrayFlexConfig(rows=rows, cols=cols, supported_depths=(1, 2, 4))
        ).tile_cycles(t_rows, k)

        vectorised = CycleAccurateSystolicArray(rows, cols, collapse_depth=k).simulate_tile(
            a_tile, b_tile
        )

        structural = SystolicArrayModel(rows, cols, configurable=True)
        structural.configure(k)
        structural_result = structural.execute_tile(a_tile, b_tile)

        reference = a_tile @ b_tile
        assert np.array_equal(vectorised.output, reference)
        assert np.array_equal(structural_result.output, reference)
        assert vectorised.total_cycles == analytical
        assert structural_result.total_cycles == analytical

    def test_gating_statistics_match_analytical_assumption(self):
        """The (k-1)/k clock-gating factor the power model uses is exactly what
        both simulators measure."""
        rows = cols = 8
        a_tile, b_tile = random_int_matrices(5, rows, cols, seed=0)
        for k in (2, 4):
            vectorised = CycleAccurateSystolicArray(rows, cols, collapse_depth=k).simulate_tile(
                a_tile, b_tile
            )
            structural = SystolicArrayModel(rows, cols)
            structural.configure(k)
            structural.execute_tile(a_tile, b_tile)
            expected = (k - 1) / k
            assert vectorised.stats.gated_register_fraction == pytest.approx(expected)
            # The structural model also carries a weight register per PE and
            # counts the full compute window, so compare its configured
            # transparency fraction instead of the cycle-weighted one.
            assert structural.gated_register_fraction() == pytest.approx(expected)


class TestAcceleratorLevelConsistency:
    def test_facade_and_baseline_agree_on_conventional_numbers(self):
        model = mobilenet_v1()
        facade = ArrayFlexAccelerator(rows=128, cols=128)
        baseline = ConventionalAccelerator(rows=128, cols=128)
        assert facade.run_model_conventional(model).total_time_ns == pytest.approx(
            baseline.run_model(model).total_time_ns
        )

    def test_power_model_mode_power_matches_schedule_layers(self):
        accel = ArrayFlexAccelerator(rows=128, cols=128)
        schedule = accel.run_model(resnet34())
        power_model = PowerModel(accel.config.technology)
        for layer in schedule.layers:
            expected = power_model.arrayflex_array_power_mw(
                128, 128, layer.collapse_depth, layer.clock_frequency_ghz
            )
            assert layer.power_mw == pytest.approx(expected)

    def test_total_cycles_equal_sum_of_eq4_per_layer(self):
        accel = ArrayFlexAccelerator(rows=128, cols=128)
        model = resnet34()
        schedule = accel.run_model(model)
        latency = LatencyModel(accel.config)
        expected = 0
        for layer, gemm in zip(schedule.layers, model.gemms()):
            expected += latency.total_cycles(gemm, layer.collapse_depth)
        assert schedule.total_cycles == expected


class TestHeadlineClaims:
    """The paper's abstract-level numbers, reproduced end to end."""

    @pytest.mark.parametrize("model_builder", [resnet34, mobilenet_v1, convnext_tiny])
    def test_latency_savings_band_128(self, model_builder):
        accel = ArrayFlexAccelerator(rows=128, cols=128)
        report = accel.compare_with_conventional(model_builder())
        assert 0.05 < report.latency_saving < 0.20

    @pytest.mark.parametrize("model_builder", [resnet34, convnext_tiny])
    def test_savings_increase_with_array_size(self, model_builder):
        model = model_builder()
        small = ArrayFlexAccelerator(rows=128, cols=128).compare_with_conventional(model)
        large = ArrayFlexAccelerator(rows=256, cols=256).compare_with_conventional(model)
        assert large.power_saving > small.power_saving

    def test_average_power_and_edp_bands(self):
        accel = ArrayFlexAccelerator(rows=128, cols=128)
        for model in (resnet34(), convnext_tiny()):
            report = accel.compare_with_conventional(model)
            assert 0.08 < report.power_saving < 0.20
            assert 1.25 < report.edp_gain < 1.95

    def test_eleven_percent_average_latency_claim(self):
        """'reduces the inference latency ... by 11%, on average' -- the suite
        average over both array sizes lands near that figure."""
        savings = []
        for size in (128, 256):
            accel = ArrayFlexAccelerator(rows=size, cols=size)
            for model in (resnet34(), mobilenet_v1(), convnext_tiny()):
                savings.append(accel.compare_with_conventional(model).latency_saving)
        average = sum(savings) / len(savings)
        assert 0.07 < average < 0.15


class TestFailureInjection:
    """The stack surfaces configuration errors instead of silently mis-modelling."""

    def test_unsupported_depth_everywhere(self):
        accel = ArrayFlexAccelerator(rows=128, cols=128)
        with pytest.raises(ValueError):
            accel.clock.frequency_ghz(3)
        with pytest.raises(ValueError):
            accel.execute_gemm(*random_int_matrices(2, 4, 4, seed=0), collapse_depth=3)

    def test_degenerate_gemm_rejected(self):
        accel = ArrayFlexAccelerator(rows=128, cols=128)
        with pytest.raises(ValueError):
            accel.run_gemm((0, 16, 16))

    def test_misshapen_operands_rejected(self):
        accel = ArrayFlexAccelerator(rows=8, cols=8)
        with pytest.raises(ValueError):
            accel.execute_gemm(np.ones((4, 5)), np.ones((6, 7)))

    def test_technology_miscalibration_detected(self):
        """A broken technology (negative delay) cannot be constructed, so the
        downstream models never see it."""
        from repro.timing.technology import TechnologyModel

        with pytest.raises(ValueError):
            TechnologyModel.from_overrides(d_csa_ps=-1.0)
