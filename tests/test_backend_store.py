"""Tests for the disk-persistent decision cache (`repro.backends.store`)."""

import json
import os
import pickle

import pytest

from repro.backends import AnalyticalBackend, BatchedCachedBackend
from repro.backends.decisions import DECISION_ROW_WIDTH
from repro.backends.store import CACHE_VERSION, DecisionStore, default_cache_dir
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import resnet34


def make_row(value: float = 1.0, error_bound: float | None = None) -> list:
    """A well-formed decision row (the v4 16-column layout) for store tests."""
    row = [2, 100, 1.7, 58.8, 3.5, 0.5, 0.9] + [float(value)] * 8 + [error_bound]
    assert len(row) == DECISION_ROW_WIDTH
    return row


@pytest.fixture()
def config():
    return ArrayFlexConfig.paper_128x128()


@pytest.fixture()
def store(tmp_path):
    return DecisionStore(tmp_path)


class TestDefaultCacheDir:
    def test_repro_cache_dir_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "explicit"

    def test_xdg_cache_home_respected(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-arrayflex"

    def test_fallback_is_under_home_not_repo(self, monkeypatch, tmp_path):
        """CI hermeticity: the default never points inside the repo tree."""
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path / "home"))
        resolved = default_cache_dir()
        assert resolved == tmp_path / "home" / ".cache" / "repro-arrayflex"
        import repro

        repo_root = type(resolved)(repro.__file__).resolve().parent.parent.parent
        assert not resolved.resolve().is_relative_to(repo_root)


class TestRoundTrip:
    def test_get_missing_is_none(self, store, config):
        assert store.get(config.cache_key(), 64, 64, 64) is None

    def test_put_then_get(self, store, config):
        key = config.cache_key()
        store.put_many(key, {DecisionStore.gemm_key(8, 8, 8): make_row(1.9)})
        assert store.get(key, 8, 8, 8) == make_row(1.9)

    def test_fresh_instance_reads_what_another_wrote(self, tmp_path, config):
        key = config.cache_key()
        DecisionStore(tmp_path).put_many(key, {(1, 2, 3): make_row(2.5)})
        assert DecisionStore(tmp_path).get(key, 1, 2, 3) == make_row(2.5)

    def test_error_bound_round_trips_including_none(self, tmp_path, config):
        """The nullable column survives the NaN encoding in both states."""
        key = config.cache_key()
        DecisionStore(tmp_path).put_many(
            key,
            {(1, 1, 1): make_row(1.0, error_bound=None),
             (2, 2, 2): make_row(1.0, error_bound=0.0125)},
        )
        fresh = DecisionStore(tmp_path)
        assert fresh.get(key, 1, 1, 1)[-1] is None
        assert fresh.get(key, 2, 2, 2)[-1] == 0.0125

    def test_shard_payload_is_columnar_npy(self, tmp_path, store, config):
        """The v2 on-disk payload is a structured array, mmap-readable."""
        import numpy as np

        from repro.backends.decisions import DECISION_DTYPE

        store.put_many(config.cache_key(), {(8, 8, 8): make_row()})
        payload = next(tmp_path.glob("decisions-*.npy"))
        array = np.load(payload, mmap_mode="r", allow_pickle=False)
        assert array.dtype == DECISION_DTYPE
        assert len(array) == 1
        assert (int(array[0]["m"]), int(array[0]["n"]), int(array[0]["t"])) == (8, 8, 8)

    def test_load_returns_lazy_view_not_a_dict(self, store, config):
        """Reads go through the zero-copy view: len/contains/get, no dict."""
        key = config.cache_key()
        store.put_many(key, {(1, 2, 3): make_row(), (4, 5, 6): make_row(2.0)})
        view = store.load(key)
        assert len(view) == 2
        assert (1, 2, 3) in view and (9, 9, 9) not in view
        assert sorted(view.keys()) == [(1, 2, 3), (4, 5, 6)]
        assert view.get((4, 5, 6)) == make_row(2.0)
        assert view.get((9, 9, 9)) is None

    def test_malformed_rows_are_rejected_loudly(self, store, config):
        key = config.cache_key()
        with pytest.raises(ValueError):
            store.put_many(key, {"1,1,1": make_row()})  # v1-era string key
        with pytest.raises(ValueError):
            store.put_many(key, {(1, 1, 1): [1, 2, 3]})  # truncated row

    def test_different_configs_do_not_collide(self, store):
        small = ArrayFlexConfig(rows=16, cols=16).cache_key()
        large = ArrayFlexConfig(rows=128, cols=128).cache_key()
        store.put_many(small, {(1, 1, 1): make_row()})
        assert store.get(large, 1, 1, 1) is None

    def test_merge_preserves_existing_entries(self, store, config):
        key = config.cache_key()
        store.put_many(key, {(1, 1, 1): make_row(1.0)})
        store.put_many(key, {(2, 2, 2): make_row(2.0)})
        assert store.get(key, 1, 1, 1) is not None
        assert store.get(key, 2, 2, 2) is not None

    def test_merge_overrides_on_key_collision(self, tmp_path, store, config):
        key = config.cache_key()
        store.put_many(key, {(1, 1, 1): make_row(1.0)})
        store.put_many(key, {(1, 1, 1): make_row(9.0)})
        assert store.get(key, 1, 1, 1) == make_row(9.0)
        assert DecisionStore(tmp_path).stats()["entries"] == 1

    def test_corrupt_shard_warns_and_reads_empty(self, tmp_path, store, config):
        key = config.cache_key()
        store.put_many(key, {(1, 1, 1): make_row()})
        shard = next(tmp_path.glob("decisions-*.npy"))
        shard.write_bytes(b"this is not a npy payload")
        fresh = DecisionStore(tmp_path)
        with pytest.warns(RuntimeWarning, match=shard.name):
            assert fresh.get(key, 1, 1, 1) is None

    def test_stats_and_clear(self, tmp_path, store, config):
        key = config.cache_key()
        store.put_many(key, {(1, 1, 1): make_row()})
        stats = DecisionStore(tmp_path).stats()
        assert (stats["shards"], stats["entries"]) == (1, 1)
        assert stats["total_bytes"] > 0
        assert stats["corrupt_shards"] == 0
        store.clear()
        assert DecisionStore(tmp_path).stats() == {
            "shards": 0,
            "entries": 0,
            "total_bytes": 0,
            "hits": 0,
            "corrupt_shards": 0,
        }


class TestPruning:
    @staticmethod
    def _set_last_used(store, key, stamp):
        """Pin one shard's recency (the eviction tie-breaker).

        Recency is the later of the payload's mtime (last write) and the
        ``.hits`` file's mtime (last warm start), so both get stamped.
        Shards already evicted by a constructor cap are skipped.
        """
        digest = store._digest(key)
        for path in (store._shard_path(digest), store._hits_path(digest)):
            if path.exists():
                os.utime(path, (stamp, stamp))

    @classmethod
    def _fill(cls, store, config, configs=4, entries=50):
        """Write several configuration shards with distinct recency stamps."""
        keys = []
        for i in range(configs):
            key = config.with_size(8 * (i + 1), 8 * (i + 1)).cache_key()
            keys.append(key)
            store.put_many(
                key,
                {
                    DecisionStore.gemm_key(m, m, m): make_row(1.9)
                    for m in range(1, entries + 1)
                },
            )
            # Explicit, well-separated stamps make the least-recently-used
            # order deterministic regardless of write timing.
            cls._set_last_used(store, key, 1000.0 + 10.0 * i)
        return keys

    def test_prune_removes_least_recently_used_first(self, tmp_path, config):
        store = DecisionStore(tmp_path)
        keys = self._fill(store, config)
        total = store.stats()["total_bytes"]
        report = store.prune(max_bytes=total // 2)
        assert report["removed_shards"] >= 1
        assert report["total_bytes"] <= total // 2
        # The most recently used shard survives, the stalest is gone.
        fresh = DecisionStore(tmp_path)
        assert fresh.get(keys[-1], 1, 1, 1) is not None
        assert fresh.get(keys[0], 1, 1, 1) is None

    def test_warm_start_hits_outrank_recency(self, tmp_path, config):
        """A shard other processes keep starting warm from survives a
        more recently written hit-less one: hits are the primary score."""
        store = DecisionStore(tmp_path)
        keys = self._fill(store, config, configs=3)
        # keys[0] is the stalest by recency but the only one ever used as
        # a warm start (a fresh instance's first disk load records a hit).
        DecisionStore(tmp_path).load(keys[0])
        per_shard = store.stats()["total_bytes"] // 3
        store.prune(max_bytes=per_shard + per_shard // 2)
        fresh = DecisionStore(tmp_path)
        assert fresh.get(keys[0], 1, 1, 1) is not None
        assert fresh.get(keys[1], 1, 1, 1) is None

    def test_first_load_per_instance_records_a_hit(self, tmp_path, config):
        key = config.cache_key()
        DecisionStore(tmp_path).put_many(key, {(1, 1, 1): make_row()})
        assert DecisionStore(tmp_path).stats()["hits"] == 0
        DecisionStore(tmp_path).load(key)
        DecisionStore(tmp_path).load(key)
        assert DecisionStore(tmp_path).stats()["hits"] == 2

    def test_prune_under_limit_is_a_no_op(self, tmp_path, config):
        store = DecisionStore(tmp_path)
        self._fill(store, config)
        before = store.stats()
        report = store.prune(max_bytes=before["total_bytes"] + 1)
        assert report == {
            "removed_shards": 0,
            "removed_bytes": 0,
            "total_bytes": before["total_bytes"],
        }

    def test_prune_requires_a_limit(self, tmp_path):
        with pytest.raises(ValueError):
            DecisionStore(tmp_path).prune()
        with pytest.raises(ValueError):
            DecisionStore(tmp_path).prune(max_bytes=0)

    def test_constructor_cap_enforced_on_merge(self, tmp_path, config):
        store = DecisionStore(tmp_path, max_bytes=16384)
        self._fill(store, config, configs=6, entries=40)
        assert store.stats()["total_bytes"] <= 16384

    def test_cap_protects_the_shard_just_written(self, tmp_path, config):
        """A cap smaller than one shard keeps the active configuration."""
        store = DecisionStore(tmp_path, max_bytes=1)
        key = config.cache_key()
        store.put_many(key, {DecisionStore.gemm_key(8, 8, 8): make_row(1.9)})
        assert store.get(key, 8, 8, 8) is not None
        assert store.stats()["shards"] == 1

    def test_invalid_constructor_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DecisionStore(tmp_path, max_bytes=0)

    def test_cap_survives_pickling(self, tmp_path):
        clone = pickle.loads(pickle.dumps(DecisionStore(tmp_path, max_bytes=123)))
        assert clone.max_bytes == 123

    def test_capped_store_stays_correct_through_backend(self, tmp_path, config):
        """Eviction costs re-derivation only, never wrong numbers."""
        reference = AnalyticalBackend().schedule_model(resnet34(), config)
        tiny = DecisionStore(tmp_path, max_bytes=512)
        backend = BatchedCachedBackend(store=tiny)
        assert backend.schedule_model(resnet34(), config).layers == reference.layers
        warm = BatchedCachedBackend(store=DecisionStore(tmp_path, max_bytes=512))
        assert warm.schedule_model(resnet34(), config).layers == reference.layers


class TestVersioning:
    def test_activity_refactor_bumped_the_decision_model_version(self):
        """The LayerMetrics refactor widened the decision row (activity,
        utilization, per-component power), so the combined cache version
        must have moved past the v1 era — a frozen constant here keeps a
        future row change from silently reusing stale shards."""
        from repro.backends.store import DECISION_MODEL_VERSION, STORE_FORMAT_VERSION

        assert DECISION_MODEL_VERSION >= 2
        assert CACHE_VERSION == f"{STORE_FORMAT_VERSION}.{DECISION_MODEL_VERSION}"
        assert CACHE_VERSION != "1.1"  # the six-number flat-row era

    def test_error_bound_column_bumped_the_decision_model_version(self):
        """The sampled backend widened rows with the error_bound column
        (v3); pre-widening shards must be orphaned by the version key."""
        from repro.backends.store import DECISION_MODEL_VERSION

        assert DECISION_MODEL_VERSION >= 3
        assert CACHE_VERSION != "1.2"  # the 15-column pre-error_bound era

    def test_columnar_rewrite_bumped_both_versions(self):
        """The v2 columnar format re-encoded rows (v4) and changed the
        on-disk layout (store format 2): frozen floor so a future change
        can never silently reuse JSON-era or early-columnar shards."""
        from repro.backends.store import DECISION_MODEL_VERSION, STORE_FORMAT_VERSION

        assert STORE_FORMAT_VERSION >= 2
        assert DECISION_MODEL_VERSION >= 4
        assert CACHE_VERSION != "1.3"  # the JSON-payload v3-row era

    def test_version_bump_purges_v1_json_shards(self, tmp_path, config):
        """A cache directory left behind by the JSON-v1-format store (v1.3
        era: ``decisions-*.json`` payloads) is purged wholesale the first
        time the current store writes — including the payload files the
        columnar store itself can no longer parse."""
        key = config.cache_key()
        (tmp_path / "VERSION").write_text("1.3\n", encoding="utf-8")
        legacy_shard = tmp_path / "decisions-0123456789abcdef01234567.json"
        legacy_shard.write_text(
            json.dumps(
                {
                    "version": "1.3",
                    "config_key": repr(key),
                    "decisions": {"8,8,8": [2, 100, 1.7, 58.8, 3.5, 0.5, 0.9]},
                }
            ),
            encoding="utf-8",
        )

        current = DecisionStore(tmp_path)  # defaults to CACHE_VERSION
        assert current.get(key, 8, 8, 8) is None  # stale shard is invisible
        current.put_many(key, {(1, 1, 1): make_row()})
        assert (tmp_path / "VERSION").read_text().strip() == CACHE_VERSION
        assert not legacy_shard.exists()
        metas = [
            json.loads(path.read_text())
            for path in tmp_path.glob("decisions-*.meta.json")
        ]
        assert [m["version"] for m in metas] == [CACHE_VERSION]
        assert DecisionStore(tmp_path).get(key, 8, 8, 8) is None
        assert DecisionStore(tmp_path).get(key, 1, 1, 1) == make_row()

    def test_warm_rerun_after_bump_re_derives_and_stays_correct(self, tmp_path, config):
        """End to end: a store carrying pre-refactor rows never feeds the
        backend; the rerun re-derives and produces the reference schedule."""
        model = resnet34()
        reference = AnalyticalBackend().schedule_model(model, config)
        stale = DecisionStore(tmp_path, version="1.1")
        backend_v1 = BatchedCachedBackend(store=stale)
        backend_v1.schedule_model(model, config)

        fresh = BatchedCachedBackend(store=DecisionStore(tmp_path))
        assert fresh.schedule_model(model, config).layers == reference.layers
        info = fresh.cache_info()
        assert info["store_hits"] == 0
        assert info["misses"] > 0

    def test_version_mismatch_invalidates_lookups(self, tmp_path, config):
        key = config.cache_key()
        DecisionStore(tmp_path, version="8.8").put_many(key, {(1, 1, 1): make_row()})
        assert DecisionStore(tmp_path, version="9.9").get(key, 1, 1, 1) is None

    def test_new_version_purges_stale_shards_on_write(self, tmp_path, config):
        key = config.cache_key()
        DecisionStore(tmp_path, version="8.8").put_many(key, {(1, 1, 1): make_row()})
        assert (tmp_path / "VERSION").read_text().strip() == "8.8"
        DecisionStore(tmp_path, version="9.9").put_many(key, {(2, 2, 2): make_row(2.0)})
        assert (tmp_path / "VERSION").read_text().strip() == "9.9"
        metas = [
            json.loads(path.read_text())
            for path in tmp_path.glob("decisions-*.meta.json")
        ]
        assert [m["version"] for m in metas] == ["9.9"]
        assert len(list(tmp_path.glob("decisions-*.npy"))) == 1

    def test_sidecar_records_config_and_version(self, tmp_path, store, config):
        key = config.cache_key()
        store.put_many(key, {(1, 1, 1): make_row()})
        meta = json.loads(next(tmp_path.glob("decisions-*.meta.json")).read_text())
        assert meta["version"] == CACHE_VERSION
        assert meta["config_key"] == repr(key)
        assert meta["rows"] == 1

    def test_pickle_round_trip_drops_transient_state(self, tmp_path, config):
        store = DecisionStore(tmp_path)
        key = config.cache_key()
        store.put_many(key, {(1, 1, 1): make_row()})
        clone = pickle.loads(pickle.dumps(store))
        assert clone.directory == store.directory
        assert clone.version == store.version
        assert clone.get(key, 1, 1, 1) == make_row()


class TestBufferedPut:
    """Single-row writes batch in memory and merge once (`DecisionStore.put`)."""

    def test_put_buffers_until_flush(self, tmp_path, config):
        store = DecisionStore(tmp_path)
        key = config.cache_key()
        store.put(key, (1, 1, 1), make_row())
        assert not list(tmp_path.glob("decisions-*.npy"))  # nothing on disk yet
        store.flush()
        assert DecisionStore(tmp_path).get(key, 1, 1, 1) == make_row()

    def test_get_sees_buffered_rows(self, tmp_path, config):
        """Read-your-writes: the buffering is invisible to the writer."""
        store = DecisionStore(tmp_path)
        key = config.cache_key()
        store.put(key, (1, 1, 1), make_row(7.0))
        assert store.get(key, 1, 1, 1) == make_row(7.0)

    def test_flush_rows_threshold_triggers_one_merge(self, tmp_path, config):
        store = DecisionStore(tmp_path, flush_rows=4)
        key = config.cache_key()
        for m in range(1, 4):
            store.put(key, (m, m, m), make_row(float(m)))
        assert not list(tmp_path.glob("decisions-*.npy"))
        store.put(key, (4, 4, 4), make_row(4.0))  # fourth row: auto-flush
        assert DecisionStore(tmp_path).stats()["entries"] == 4

    def test_pickling_flushes_the_buffer(self, tmp_path, config):
        """Shipping a store to a pool worker must not strand buffered rows."""
        store = DecisionStore(tmp_path)
        key = config.cache_key()
        store.put(key, (1, 1, 1), make_row())
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get(key, 1, 1, 1) == make_row()
        assert DecisionStore(tmp_path).stats()["entries"] == 1

    def test_put_many_folds_in_buffered_rows_for_the_same_shard(self, tmp_path, config):
        store = DecisionStore(tmp_path)
        key = config.cache_key()
        store.put(key, (1, 1, 1), make_row(1.0))
        store.put_many(key, {(2, 2, 2): make_row(2.0)})
        fresh = DecisionStore(tmp_path)
        assert fresh.get(key, 1, 1, 1) == make_row(1.0)
        assert fresh.get(key, 2, 2, 2) == make_row(2.0)

    def test_invalid_flush_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DecisionStore(tmp_path, flush_rows=0)


class TestBackendIntegration:
    def test_cold_then_warm_is_bit_identical(self, tmp_path, config):
        """A fresh process (fresh backend) reads back the exact schedule."""
        model = resnet34()
        reference = AnalyticalBackend().schedule_model(model, config)

        cold = BatchedCachedBackend(store=DecisionStore(tmp_path))
        assert cold.schedule_model(model, config).layers == reference.layers

        warm = BatchedCachedBackend(store=DecisionStore(tmp_path))
        schedule = warm.schedule_model(model, config)
        assert schedule.layers == reference.layers
        info = warm.cache_info()
        assert info["misses"] == 0
        assert info["store_hits"] > 0

    def test_totals_fast_path_matches_schedule_sums(self, tmp_path, config):
        model = resnet34()
        backend = BatchedCachedBackend(store=DecisionStore(tmp_path))
        schedule = backend.schedule_model(model, config)
        totals = backend.schedule_model_totals(model, config)
        assert totals.time_ns == schedule.total_time_ns
        assert totals.energy_nj == schedule.total_energy_nj
        conventional = backend.schedule_model_conventional(model, config)
        conv_totals = backend.schedule_model_totals(model, config, conventional=True)
        assert conv_totals.time_ns == conventional.total_time_ns
        assert conv_totals.energy_nj == conventional.total_energy_nj

    def test_version_bump_forces_re_derivation(self, tmp_path, config):
        model = resnet34()
        BatchedCachedBackend(store=DecisionStore(tmp_path)).schedule_model(model, config)
        stale = BatchedCachedBackend(store=DecisionStore(tmp_path, version="0.0"))
        stale.schedule_model(model, config)
        info = stale.cache_info()
        assert info["store_hits"] == 0
        assert info["misses"] > 0

    def test_backend_with_store_pickles(self, tmp_path, config):
        backend = BatchedCachedBackend(store=DecisionStore(tmp_path))
        model = resnet34()
        reference = backend.schedule_model(model, config)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.schedule_model(model, config).layers == reference.layers


class TestSampledStoreKeys:
    """Sampled-backend rows are keyed by the sampling parameters: a row
    written under one seed or fraction can never answer a lookup made
    under another (the cache-key collision the PR exists to prevent)."""

    WORKLOAD = [
        GemmShape(m=20, n=33, t=6, name="edge-both"),
        GemmShape(m=24, n=40, t=300, name="tall"),
        GemmShape(m=7, n=50, t=3, name="edge-n"),
    ]

    @staticmethod
    def _backend(tmp_path, **kwargs):
        from repro.backends import SampledSimBackend

        return SampledSimBackend(store=DecisionStore(tmp_path), **kwargs)

    def test_same_parameters_warm_start_from_disk(self, tmp_path):
        small = ArrayFlexConfig(rows=16, cols=16)
        cold = self._backend(tmp_path, sample_seed=4)
        reference = cold.schedule_model(self.WORKLOAD, small)
        warm = self._backend(tmp_path, sample_seed=4)
        assert warm.schedule_model(self.WORKLOAD, small).layers == reference.layers
        info = warm.cache_info()
        assert info["store_hits"] > 0
        assert info["misses"] == 0

    @pytest.mark.parametrize(
        "other_kwargs",
        [
            {"sample_seed": 5},
            {"sample_fraction": 0.5},
            {"min_tiles_per_shape": 3},
            {"max_probe_t": 16},
            {"error_target": 0.01},
        ],
    )
    def test_different_sampling_parameters_never_share_rows(self, tmp_path, other_kwargs):
        small = ArrayFlexConfig(rows=16, cols=16)
        writer = self._backend(tmp_path, sample_seed=4)
        writer.schedule_model(self.WORKLOAD, small)
        reader = self._backend(tmp_path, **{"sample_seed": 4, **other_kwargs})
        reader.schedule_model(self.WORKLOAD, small)
        info = reader.cache_info()
        assert info["store_hits"] == 0  # rejected: different shard key
        assert info["misses"] > 0
        # Both parameter sets own separate shards in the same directory.
        assert DecisionStore(tmp_path).stats()["shards"] == 2

    def test_sampled_and_batched_rows_never_collide(self, tmp_path):
        small = ArrayFlexConfig(rows=16, cols=16)
        sampled = self._backend(tmp_path)
        sampled.schedule_model(self.WORKLOAD, small)
        batched = BatchedCachedBackend(store=DecisionStore(tmp_path))
        batched.schedule_model(self.WORKLOAD, small)
        assert batched.cache_info()["store_hits"] == 0
        assert DecisionStore(tmp_path).stats()["shards"] == 2


class TestAttachStore:
    """One helper validates every cache_dir entry point identically."""

    def test_attach_to_default_backend(self, tmp_path):
        from repro.backends import attach_store

        backend = attach_store(None, tmp_path)
        assert isinstance(backend, BatchedCachedBackend)
        assert backend.store.directory == tmp_path

    def test_none_cache_dir_passes_through(self):
        from repro.backends import attach_store

        assert attach_store("analytical", None) == "analytical"

    def test_rejects_non_batched_and_double_store(self, tmp_path):
        from repro.backends import attach_store

        with pytest.raises(ValueError):
            attach_store("analytical", tmp_path)
        with pytest.raises(ValueError):
            attach_store(BatchedCachedBackend(store=DecisionStore(tmp_path)), tmp_path)

    def test_explorer_backend_name_plus_cache_dir_persists(self, tmp_path):
        """Regression: backend= and cache_dir= together must not silently
        drop persistence."""
        from repro.core.design_space import DesignPoint, DesignSpaceExplorer

        explorer = DesignSpaceExplorer([resnet34()], backend="batched", cache_dir=tmp_path)
        assert explorer.backend.store is not None
        explorer.evaluate_point(DesignPoint(rows=64, cols=64, supported_depths=(1, 2)))
        assert list(tmp_path.glob("decisions-*.npy"))
        with pytest.raises(ValueError):
            DesignSpaceExplorer([resnet34()], backend="analytical", cache_dir=tmp_path)

    def test_size_sweep_cache_dir_persists(self, tmp_path):
        from repro.eval.sweep import array_size_sweep

        array_size_sweep([resnet34()], sizes=[(64, 64)], backend="batched", cache_dir=tmp_path)
        assert list(tmp_path.glob("decisions-*.npy"))


class TestAttachStoreIsolation:
    def test_attach_store_does_not_mutate_caller_backend(self, tmp_path):
        """Regression: persistence stays confined to the component that
        asked for it."""
        from repro.backends import attach_store

        original = BatchedCachedBackend(cache_size=7)
        attached = attach_store(original, tmp_path)
        assert original.store is None
        assert attached is not original
        assert attached.cache_size == 7
        assert attached.store.directory == tmp_path


class TestCacheCapWithStore:
    def test_store_hits_respect_cache_size_cap(self, tmp_path, config):
        """Regression: a warm store must not grow the LRU past its cap."""
        model = resnet34()
        BatchedCachedBackend(store=DecisionStore(tmp_path)).schedule_model(model, config)
        warm = BatchedCachedBackend(cache_size=4, store=DecisionStore(tmp_path))
        warm.schedule_model(model, config)
        assert warm.cache_info()["size"] <= 4

    def test_attach_store_preserves_subclass_and_state(self, tmp_path):
        from repro.backends import attach_store
        from repro.backends.batched import BatchedCachedBackend as _Base

        class Tuned(_Base):
            def __init__(self, threshold: float = 0.5) -> None:
                super().__init__()
                self.threshold = threshold

        attached = attach_store(Tuned(threshold=0.25), tmp_path)
        assert isinstance(attached, Tuned)
        assert attached.threshold == 0.25
        assert attached.store.directory == tmp_path

    def test_env_cache_dirs_expand_user(self, monkeypatch):
        from repro.backends.store import default_cache_dir
        from pathlib import Path

        monkeypatch.setenv("REPRO_CACHE_DIR", "~/somewhere")
        assert default_cache_dir() == Path.home() / "somewhere"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", "~/xdgcache")
        assert default_cache_dir() == Path.home() / "xdgcache" / "repro-arrayflex"
