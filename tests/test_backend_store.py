"""Tests for the disk-persistent decision cache (`repro.backends.store`)."""

import json
import pickle

import pytest

from repro.backends import AnalyticalBackend, BatchedCachedBackend
from repro.backends.store import CACHE_VERSION, DecisionStore, default_cache_dir
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import resnet34


@pytest.fixture()
def config():
    return ArrayFlexConfig.paper_128x128()


@pytest.fixture()
def store(tmp_path):
    return DecisionStore(tmp_path)


class TestDefaultCacheDir:
    def test_repro_cache_dir_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "explicit"

    def test_xdg_cache_home_respected(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-arrayflex"

    def test_fallback_is_under_home_not_repo(self, monkeypatch, tmp_path):
        """CI hermeticity: the default never points inside the repo tree."""
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path / "home"))
        resolved = default_cache_dir()
        assert resolved == tmp_path / "home" / ".cache" / "repro-arrayflex"
        import repro

        repo_root = type(resolved)(repro.__file__).resolve().parent.parent.parent
        assert not resolved.resolve().is_relative_to(repo_root)


class TestRoundTrip:
    def test_get_missing_is_none(self, store, config):
        assert store.get(config.cache_key(), 64, 64, 64) is None

    def test_put_then_get(self, store, config):
        key = config.cache_key()
        store.put_many(key, {DecisionStore.gemm_key(8, 8, 8): [2, 100, 1.7, 58.8, 3.5, 1.9]})
        assert store.get(key, 8, 8, 8) == [2, 100, 1.7, 58.8, 3.5, 1.9]

    def test_fresh_instance_reads_what_another_wrote(self, tmp_path, config):
        key = config.cache_key()
        DecisionStore(tmp_path).put_many(key, {"1,2,3": [1, 5, 2.0, 2.5, 1.0, 1.0]})
        assert DecisionStore(tmp_path).get(key, 1, 2, 3) == [1, 5, 2.0, 2.5, 1.0, 1.0]

    def test_different_configs_do_not_collide(self, store):
        small = ArrayFlexConfig(rows=16, cols=16).cache_key()
        large = ArrayFlexConfig(rows=128, cols=128).cache_key()
        store.put_many(small, {"1,1,1": [1, 1, 1.0, 1.0, 1.0, 1.0]})
        assert store.get(large, 1, 1, 1) is None

    def test_merge_preserves_existing_entries(self, store, config):
        key = config.cache_key()
        store.put_many(key, {"1,1,1": [1, 1, 1.0, 1.0, 1.0, 1.0]})
        store.put_many(key, {"2,2,2": [2, 2, 2.0, 2.0, 2.0, 2.0]})
        assert store.get(key, 1, 1, 1) is not None
        assert store.get(key, 2, 2, 2) is not None

    def test_corrupt_shard_treated_as_empty(self, tmp_path, store, config):
        key = config.cache_key()
        store.put_many(key, {"1,1,1": [1, 1, 1.0, 1.0, 1.0, 1.0]})
        shard = next(tmp_path.glob("decisions-*.json"))
        shard.write_text("{not json", encoding="utf-8")
        assert DecisionStore(tmp_path).get(key, 1, 1, 1) is None

    def test_stats_and_clear(self, tmp_path, store, config):
        key = config.cache_key()
        store.put_many(key, {"1,1,1": [1, 1, 1.0, 1.0, 1.0, 1.0]})
        stats = DecisionStore(tmp_path).stats()
        assert (stats["shards"], stats["entries"]) == (1, 1)
        assert stats["total_bytes"] > 0
        store.clear()
        assert DecisionStore(tmp_path).stats() == {
            "shards": 0, "entries": 0, "total_bytes": 0,
        }


class TestPruning:
    @staticmethod
    def _fill(store, config, configs=4, entries=50):
        """Write several configuration shards with distinct mtimes."""
        import os
        import time as time_module

        keys = []
        for i in range(configs):
            key = config.with_size(8 * (i + 1), 8 * (i + 1)).cache_key()
            keys.append(key)
            store.put_many(
                key,
                {
                    DecisionStore.gemm_key(m, m, m): [2, 100, 1.7, 58.8, 3.5, 1.9]
                    for m in range(1, entries + 1)
                },
            )
            # Distinct mtimes make the oldest-first order deterministic on
            # filesystems with coarse timestamps.
            digest = store._digest(key)
            stamp = time_module.time() - (configs - i) * 10
            os.utime(store._shard_path(digest), (stamp, stamp))
        return keys

    def test_prune_removes_oldest_shards_first(self, tmp_path, config):
        store = DecisionStore(tmp_path)
        keys = self._fill(store, config)
        total = store.stats()["total_bytes"]
        report = store.prune(max_bytes=total // 2)
        assert report["removed_shards"] >= 1
        assert report["total_bytes"] <= total // 2
        # The newest shard survives, the oldest is gone.
        fresh = DecisionStore(tmp_path)
        assert fresh.get(keys[-1], 1, 1, 1) is not None
        assert fresh.get(keys[0], 1, 1, 1) is None

    def test_prune_under_limit_is_a_no_op(self, tmp_path, config):
        store = DecisionStore(tmp_path)
        self._fill(store, config)
        before = store.stats()
        report = store.prune(max_bytes=before["total_bytes"] + 1)
        assert report == {
            "removed_shards": 0,
            "removed_bytes": 0,
            "total_bytes": before["total_bytes"],
        }

    def test_prune_requires_a_limit(self, tmp_path):
        with pytest.raises(ValueError):
            DecisionStore(tmp_path).prune()
        with pytest.raises(ValueError):
            DecisionStore(tmp_path).prune(max_bytes=0)

    def test_constructor_cap_enforced_on_merge(self, tmp_path, config):
        store = DecisionStore(tmp_path, max_bytes=4096)
        self._fill(store, config, configs=6, entries=40)
        assert store.stats()["total_bytes"] <= 4096

    def test_cap_protects_the_shard_just_written(self, tmp_path, config):
        """A cap smaller than one shard keeps the active configuration."""
        store = DecisionStore(tmp_path, max_bytes=1)
        key = config.cache_key()
        store.put_many(
            key, {DecisionStore.gemm_key(8, 8, 8): [2, 100, 1.7, 58.8, 3.5, 1.9]}
        )
        assert store.get(key, 8, 8, 8) is not None
        assert store.stats()["shards"] == 1

    def test_invalid_constructor_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DecisionStore(tmp_path, max_bytes=0)

    def test_cap_survives_pickling(self, tmp_path):
        clone = pickle.loads(pickle.dumps(DecisionStore(tmp_path, max_bytes=123)))
        assert clone.max_bytes == 123

    def test_capped_store_stays_correct_through_backend(self, tmp_path, config):
        """Eviction costs re-derivation only, never wrong numbers."""
        reference = AnalyticalBackend().schedule_model(resnet34(), config)
        tiny = DecisionStore(tmp_path, max_bytes=512)
        backend = BatchedCachedBackend(store=tiny)
        assert backend.schedule_model(resnet34(), config).layers == reference.layers
        warm = BatchedCachedBackend(store=DecisionStore(tmp_path, max_bytes=512))
        assert warm.schedule_model(resnet34(), config).layers == reference.layers


class TestVersioning:
    def test_activity_refactor_bumped_the_decision_model_version(self):
        """The LayerMetrics refactor widened the decision row (activity,
        utilization, per-component power), so the combined cache version
        must have moved past the v1 era — a frozen constant here keeps a
        future row change from silently reusing stale shards."""
        from repro.backends.store import DECISION_MODEL_VERSION, STORE_FORMAT_VERSION

        assert DECISION_MODEL_VERSION >= 2
        assert CACHE_VERSION == f"{STORE_FORMAT_VERSION}.{DECISION_MODEL_VERSION}"
        assert CACHE_VERSION != "1.1"  # the six-number flat-row era

    def test_error_bound_column_bumped_the_decision_model_version(self):
        """The sampled backend widened rows with the error_bound column
        (v3); pre-widening shards must be orphaned by the version key."""
        from repro.backends.store import DECISION_MODEL_VERSION

        assert DECISION_MODEL_VERSION >= 3
        assert CACHE_VERSION != "1.2"  # the 15-column pre-error_bound era

    def test_version_bump_purges_pre_refactor_shards(self, tmp_path, config):
        """Shards written by the pre-refactor store (version 1.1, six-number
        rows) are purged wholesale the first time the current store writes."""
        key = config.cache_key()
        legacy = DecisionStore(tmp_path, version="1.1")
        legacy.put_many(key, {"8,8,8": [2, 100, 1.7, 58.8, 3.5, 1.9]})
        assert (tmp_path / "VERSION").read_text().strip() == "1.1"

        current = DecisionStore(tmp_path)  # defaults to CACHE_VERSION
        assert current.get(key, 8, 8, 8) is None  # stale shard is invisible
        current.put_many(key, {"1,1,1": [1] * 15})
        assert (tmp_path / "VERSION").read_text().strip() == CACHE_VERSION
        payloads = [
            json.loads(path.read_text()) for path in tmp_path.glob("decisions-*.json")
        ]
        assert [p["version"] for p in payloads] == [CACHE_VERSION]
        assert DecisionStore(tmp_path).get(key, 8, 8, 8) is None

    def test_warm_rerun_after_bump_re_derives_and_stays_correct(self, tmp_path, config):
        """End to end: a store carrying pre-refactor rows never feeds the
        backend; the rerun re-derives and produces the reference schedule."""
        model = resnet34()
        reference = AnalyticalBackend().schedule_model(model, config)
        stale = DecisionStore(tmp_path, version="1.1")
        backend_v1 = BatchedCachedBackend(store=stale)
        backend_v1.schedule_model(model, config)

        fresh = BatchedCachedBackend(store=DecisionStore(tmp_path))
        assert fresh.schedule_model(model, config).layers == reference.layers
        info = fresh.cache_info()
        assert info["store_hits"] == 0
        assert info["misses"] > 0

    def test_version_mismatch_invalidates_lookups(self, tmp_path, config):
        key = config.cache_key()
        DecisionStore(tmp_path, version="1.1").put_many(
            key, {"1,1,1": [1, 1, 1.0, 1.0, 1.0, 1.0]}
        )
        assert DecisionStore(tmp_path, version="9.9").get(key, 1, 1, 1) is None

    def test_new_version_purges_stale_shards_on_write(self, tmp_path, config):
        key = config.cache_key()
        DecisionStore(tmp_path, version="1.1").put_many(
            key, {"1,1,1": [1, 1, 1.0, 1.0, 1.0, 1.0]}
        )
        assert (tmp_path / "VERSION").read_text().strip() == "1.1"
        DecisionStore(tmp_path, version="9.9").put_many(
            key, {"2,2,2": [2, 2, 2.0, 2.0, 2.0, 2.0]}
        )
        assert (tmp_path / "VERSION").read_text().strip() == "9.9"
        payloads = [
            json.loads(path.read_text())
            for path in tmp_path.glob("decisions-*.json")
        ]
        assert [p["version"] for p in payloads] == ["9.9"]

    def test_shard_records_config_and_version(self, tmp_path, store, config):
        key = config.cache_key()
        store.put_many(key, {"1,1,1": [1, 1, 1.0, 1.0, 1.0, 1.0]})
        payload = json.loads(next(tmp_path.glob("decisions-*.json")).read_text())
        assert payload["version"] == CACHE_VERSION
        assert payload["config_key"] == repr(key)

    def test_pickle_round_trip_drops_transient_state(self, tmp_path, config):
        store = DecisionStore(tmp_path)
        key = config.cache_key()
        store.put_many(key, {"1,1,1": [1, 1, 1.0, 1.0, 1.0, 1.0]})
        clone = pickle.loads(pickle.dumps(store))
        assert clone.directory == store.directory
        assert clone.version == store.version
        assert clone.get(key, 1, 1, 1) == [1, 1, 1.0, 1.0, 1.0, 1.0]


class TestBackendIntegration:
    def test_cold_then_warm_is_bit_identical(self, tmp_path, config):
        """A fresh process (fresh backend) reads back the exact schedule."""
        model = resnet34()
        reference = AnalyticalBackend().schedule_model(model, config)

        cold = BatchedCachedBackend(store=DecisionStore(tmp_path))
        assert cold.schedule_model(model, config).layers == reference.layers

        warm = BatchedCachedBackend(store=DecisionStore(tmp_path))
        schedule = warm.schedule_model(model, config)
        assert schedule.layers == reference.layers
        info = warm.cache_info()
        assert info["misses"] == 0
        assert info["store_hits"] > 0

    def test_totals_fast_path_matches_schedule_sums(self, tmp_path, config):
        model = resnet34()
        backend = BatchedCachedBackend(store=DecisionStore(tmp_path))
        schedule = backend.schedule_model(model, config)
        totals = backend.schedule_model_totals(model, config)
        assert totals.time_ns == schedule.total_time_ns
        assert totals.energy_nj == schedule.total_energy_nj
        conventional = backend.schedule_model_conventional(model, config)
        conv_totals = backend.schedule_model_totals(model, config, conventional=True)
        assert conv_totals.time_ns == conventional.total_time_ns
        assert conv_totals.energy_nj == conventional.total_energy_nj

    def test_version_bump_forces_re_derivation(self, tmp_path, config):
        model = resnet34()
        BatchedCachedBackend(store=DecisionStore(tmp_path)).schedule_model(model, config)
        stale = BatchedCachedBackend(store=DecisionStore(tmp_path, version="0.0"))
        stale.schedule_model(model, config)
        info = stale.cache_info()
        assert info["store_hits"] == 0
        assert info["misses"] > 0

    def test_backend_with_store_pickles(self, tmp_path, config):
        backend = BatchedCachedBackend(store=DecisionStore(tmp_path))
        model = resnet34()
        reference = backend.schedule_model(model, config)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.schedule_model(model, config).layers == reference.layers


class TestSampledStoreKeys:
    """Sampled-backend rows are keyed by the sampling parameters: a row
    written under one seed or fraction can never answer a lookup made
    under another (the cache-key collision the PR exists to prevent)."""

    WORKLOAD = [
        GemmShape(m=20, n=33, t=6, name="edge-both"),
        GemmShape(m=24, n=40, t=300, name="tall"),
        GemmShape(m=7, n=50, t=3, name="edge-n"),
    ]

    @staticmethod
    def _backend(tmp_path, **kwargs):
        from repro.backends import SampledSimBackend

        return SampledSimBackend(store=DecisionStore(tmp_path), **kwargs)

    def test_same_parameters_warm_start_from_disk(self, tmp_path):
        small = ArrayFlexConfig(rows=16, cols=16)
        cold = self._backend(tmp_path, sample_seed=4)
        reference = cold.schedule_model(self.WORKLOAD, small)
        warm = self._backend(tmp_path, sample_seed=4)
        assert warm.schedule_model(self.WORKLOAD, small).layers == reference.layers
        info = warm.cache_info()
        assert info["store_hits"] > 0
        assert info["misses"] == 0

    @pytest.mark.parametrize(
        "other_kwargs",
        [
            {"sample_seed": 5},
            {"sample_fraction": 0.5},
            {"min_tiles_per_shape": 3},
            {"max_probe_t": 16},
            {"error_target": 0.01},
        ],
    )
    def test_different_sampling_parameters_never_share_rows(self, tmp_path, other_kwargs):
        small = ArrayFlexConfig(rows=16, cols=16)
        writer = self._backend(tmp_path, sample_seed=4)
        writer.schedule_model(self.WORKLOAD, small)
        reader = self._backend(tmp_path, **{"sample_seed": 4, **other_kwargs})
        reader.schedule_model(self.WORKLOAD, small)
        info = reader.cache_info()
        assert info["store_hits"] == 0  # rejected: different shard key
        assert info["misses"] > 0
        # Both parameter sets own separate shards in the same directory.
        assert DecisionStore(tmp_path).stats()["shards"] == 2

    def test_sampled_and_batched_rows_never_collide(self, tmp_path):
        small = ArrayFlexConfig(rows=16, cols=16)
        sampled = self._backend(tmp_path)
        sampled.schedule_model(self.WORKLOAD, small)
        batched = BatchedCachedBackend(store=DecisionStore(tmp_path))
        batched.schedule_model(self.WORKLOAD, small)
        assert batched.cache_info()["store_hits"] == 0
        assert DecisionStore(tmp_path).stats()["shards"] == 2


class TestAttachStore:
    """One helper validates every cache_dir entry point identically."""

    def test_attach_to_default_backend(self, tmp_path):
        from repro.backends import attach_store

        backend = attach_store(None, tmp_path)
        assert isinstance(backend, BatchedCachedBackend)
        assert backend.store.directory == tmp_path

    def test_none_cache_dir_passes_through(self):
        from repro.backends import attach_store

        assert attach_store("analytical", None) == "analytical"

    def test_rejects_non_batched_and_double_store(self, tmp_path):
        from repro.backends import attach_store

        with pytest.raises(ValueError):
            attach_store("analytical", tmp_path)
        with pytest.raises(ValueError):
            attach_store(BatchedCachedBackend(store=DecisionStore(tmp_path)), tmp_path)

    def test_explorer_backend_name_plus_cache_dir_persists(self, tmp_path):
        """Regression: backend= and cache_dir= together must not silently
        drop persistence."""
        from repro.core.design_space import DesignPoint, DesignSpaceExplorer

        explorer = DesignSpaceExplorer([resnet34()], backend="batched", cache_dir=tmp_path)
        assert explorer.backend.store is not None
        explorer.evaluate_point(DesignPoint(rows=64, cols=64, supported_depths=(1, 2)))
        assert list(tmp_path.glob("decisions-*.json"))
        with pytest.raises(ValueError):
            DesignSpaceExplorer([resnet34()], backend="analytical", cache_dir=tmp_path)

    def test_size_sweep_cache_dir_persists(self, tmp_path):
        from repro.eval.sweep import array_size_sweep

        array_size_sweep([resnet34()], sizes=[(64, 64)], backend="batched", cache_dir=tmp_path)
        assert list(tmp_path.glob("decisions-*.json"))


class TestAttachStoreIsolation:
    def test_attach_store_does_not_mutate_caller_backend(self, tmp_path):
        """Regression: persistence stays confined to the component that
        asked for it."""
        from repro.backends import attach_store

        original = BatchedCachedBackend(cache_size=7)
        attached = attach_store(original, tmp_path)
        assert original.store is None
        assert attached is not original
        assert attached.cache_size == 7
        assert attached.store.directory == tmp_path


class TestCacheCapWithStore:
    def test_store_hits_respect_cache_size_cap(self, tmp_path, config):
        """Regression: a warm store must not grow the LRU past its cap."""
        model = resnet34()
        BatchedCachedBackend(store=DecisionStore(tmp_path)).schedule_model(model, config)
        warm = BatchedCachedBackend(cache_size=4, store=DecisionStore(tmp_path))
        warm.schedule_model(model, config)
        assert warm.cache_info()["size"] <= 4

    def test_attach_store_preserves_subclass_and_state(self, tmp_path):
        from repro.backends import attach_store
        from repro.backends.batched import BatchedCachedBackend as _Base

        class Tuned(_Base):
            def __init__(self, threshold: float = 0.5) -> None:
                super().__init__()
                self.threshold = threshold

        attached = attach_store(Tuned(threshold=0.25), tmp_path)
        assert isinstance(attached, Tuned)
        assert attached.threshold == 0.25
        assert attached.store.directory == tmp_path

    def test_env_cache_dirs_expand_user(self, monkeypatch):
        from repro.backends.store import default_cache_dir
        from pathlib import Path

        monkeypatch.setenv("REPRO_CACHE_DIR", "~/somewhere")
        assert default_cache_dir() == Path.home() / "somewhere"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", "~/xdgcache")
        assert default_cache_dir() == Path.home() / "xdgcache" / "repro-arrayflex"
