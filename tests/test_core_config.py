"""Tests for the accelerator configuration object."""

import pytest

from repro.core.config import ArrayFlexConfig
from repro.timing.technology import TechnologyModel


class TestValidation:
    def test_defaults_are_the_paper_instance(self):
        config = ArrayFlexConfig()
        assert (config.rows, config.cols) == (128, 128)
        assert config.sorted_depths() == (1, 2, 4)

    def test_depths_must_divide_dimensions(self):
        with pytest.raises(ValueError):
            ArrayFlexConfig(rows=128, cols=128, supported_depths=(1, 3))

    def test_normal_mode_must_be_supported(self):
        with pytest.raises(ValueError):
            ArrayFlexConfig(supported_depths=(2, 4))

    def test_duplicate_depths_rejected(self):
        with pytest.raises(ValueError):
            ArrayFlexConfig(supported_depths=(1, 2, 2))

    def test_empty_depths_rejected(self):
        with pytest.raises(ValueError):
            ArrayFlexConfig(supported_depths=())

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ArrayFlexConfig(rows=0, cols=128)

    def test_invalid_activity(self):
        with pytest.raises(ValueError):
            ArrayFlexConfig(activity=0.0)
        with pytest.raises(ValueError):
            ArrayFlexConfig(activity=1.5)


class TestPaperInstances:
    def test_128(self):
        config = ArrayFlexConfig.paper_128x128()
        assert config.num_pes == 128 * 128
        assert config.max_depth == 4

    def test_256(self):
        config = ArrayFlexConfig.paper_256x256()
        assert config.rows == 256

    def test_fig5_supports_k3(self):
        config = ArrayFlexConfig.fig5_132x132()
        assert config.sorted_depths() == (1, 2, 3, 4)

    def test_custom_technology_is_carried(self):
        tech = TechnologyModel.from_overrides(d_mul_ps=400.0)
        config = ArrayFlexConfig.paper_128x128(technology=tech)
        assert config.technology.d_mul_ps == 400.0


class TestDerivedHelpers:
    def test_with_size(self):
        config = ArrayFlexConfig().with_size(64, 32)
        assert (config.rows, config.cols) == (64, 32)
        assert config.supported_depths == (1, 2, 4)

    def test_with_depths(self):
        config = ArrayFlexConfig().with_depths((1, 2))
        assert config.sorted_depths() == (1, 2)

    def test_with_size_revalidates(self):
        with pytest.raises(ValueError):
            ArrayFlexConfig().with_size(6, 6)  # 4 does not divide 6

    def test_configuration_plane_dimensions(self):
        plane = ArrayFlexConfig(rows=16, cols=32).configuration_plane()
        assert plane.rows == 16 and plane.cols == 32

    def test_frozen(self):
        config = ArrayFlexConfig()
        with pytest.raises(Exception):
            config.rows = 64  # type: ignore[misc]
