"""Tests for the weight-stationary skew schedules."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arch.dataflow import WeightStationaryDataflow
from repro.core.latency import arrayflex_tile_cycles, conventional_tile_cycles


class TestConstruction:
    def test_depth_must_divide_dimensions(self):
        with pytest.raises(ValueError):
            WeightStationaryDataflow(8, 8, collapse_depth=3)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            WeightStationaryDataflow(0, 8)
        with pytest.raises(ValueError):
            WeightStationaryDataflow(8, 8, collapse_depth=0)


class TestNormalModeSchedule:
    def test_skew_is_one_cycle_per_row(self):
        dataflow = WeightStationaryDataflow(4, 4, 1)
        assert dataflow.input_arrival_cycle(t_index=0, row=0) == 0
        assert dataflow.input_arrival_cycle(t_index=0, row=3) == 3
        assert dataflow.input_arrival_cycle(t_index=5, row=2) == 7

    def test_pe_visibility_adds_column_delay(self):
        dataflow = WeightStationaryDataflow(4, 4, 1)
        assert dataflow.pe_activation_cycle(0, 0, 3) == 3
        assert dataflow.pe_activation_cycle(2, 1, 2) == 5

    def test_output_ready_cycle(self):
        dataflow = WeightStationaryDataflow(4, 4, 1)
        # First output of column 0 is ready after the reduction fills (R-1 rows).
        assert dataflow.output_ready_cycle(0, 0) == 3

    def test_tile_latency_matches_eq1(self):
        dataflow = WeightStationaryDataflow(8, 8, 1)
        assert dataflow.tile_latency_cycles(t_rows=10) == conventional_tile_cycles(8, 8, 10)


class TestShallowModeSchedule:
    def test_skew_is_one_cycle_per_group(self):
        """Paper: 'the first (and last) elements of matrix A arrive in
        batches of k words'."""
        dataflow = WeightStationaryDataflow(8, 8, 4)
        assert dataflow.input_arrival_cycle(0, 0) == 0
        assert dataflow.input_arrival_cycle(0, 3) == 0  # same group
        assert dataflow.input_arrival_cycle(0, 4) == 1  # next group

    def test_horizontal_broadcast_within_group(self):
        dataflow = WeightStationaryDataflow(8, 8, 2)
        assert dataflow.pe_activation_cycle(0, 0, 0) == dataflow.pe_activation_cycle(0, 0, 1)
        assert dataflow.pe_activation_cycle(0, 0, 2) == dataflow.pe_activation_cycle(0, 0, 0) + 1

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_tile_latency_matches_eq3(self, k):
        dataflow = WeightStationaryDataflow(8, 8, k)
        assert dataflow.tile_latency_cycles(12) == arrayflex_tile_cycles(8, 8, 12, k)

    @given(
        st.sampled_from([(4, 4), (8, 8), (8, 16), (16, 8)]),
        st.sampled_from([1, 2, 4]),
        st.integers(1, 64),
    )
    def test_latency_formula_holds_generally(self, dims, k, t_rows):
        rows, cols = dims
        dataflow = WeightStationaryDataflow(rows, cols, k)
        # Eq. (3): R (weight load) + R/k + C/k + T - 2, with ceiling division.
        expected = rows + -(-rows // k) + -(-cols // k) + t_rows - 2
        assert dataflow.tile_latency_cycles(t_rows) == expected
        assert dataflow.tile_latency_cycles(t_rows) == arrayflex_tile_cycles(
            rows, cols, t_rows, k
        )


class TestStreamConstruction:
    def test_west_edge_schedule_shape(self):
        dataflow = WeightStationaryDataflow(4, 4, 1)
        schedule = dataflow.west_edge_schedule(t_rows=5)
        assert schedule.shape == (dataflow.compute_cycles(5), 4)

    def test_every_activation_scheduled_exactly_once(self):
        dataflow = WeightStationaryDataflow(4, 4, 2)
        schedule = dataflow.west_edge_schedule(t_rows=6)
        for row in range(4):
            valid = schedule[:, row][schedule[:, row] >= 0]
            assert sorted(valid.tolist()) == list(range(6))

    def test_skewed_stream_places_values(self):
        dataflow = WeightStationaryDataflow(4, 4, 1)
        a_tile = np.arange(1, 9).reshape(2, 4)  # T=2, rows_used=4
        stream = dataflow.build_skewed_stream(a_tile)
        # Row 0 receives its two values at cycles 0 and 1.
        assert stream[0, 0] == a_tile[0, 0]
        assert stream[1, 0] == a_tile[1, 0]
        # Row 3 is delayed by its group index (3 for k = 1).
        assert stream[3, 3] == a_tile[0, 3]

    def test_partial_tile_rows_padded(self):
        dataflow = WeightStationaryDataflow(4, 4, 1)
        a_tile = np.ones((3, 2), dtype=np.int64)
        stream = dataflow.build_skewed_stream(a_tile)
        # Unused array rows (2, 3) never receive data.
        assert np.all(stream[:, 2:] == 0)

    def test_stream_rejects_oversized_tiles(self):
        dataflow = WeightStationaryDataflow(4, 4, 1)
        with pytest.raises(ValueError):
            dataflow.build_skewed_stream(np.ones((2, 5)))

    def test_output_collection_schedule_monotone(self):
        dataflow = WeightStationaryDataflow(8, 8, 2)
        schedule = dataflow.output_collection_schedule(t_rows=4)
        assert schedule.shape == (4, 8)
        # Later t and later column groups are captured later.
        assert schedule[1, 0] > schedule[0, 0]
        assert schedule[0, 7] > schedule[0, 0]

    def test_invalid_queries(self):
        dataflow = WeightStationaryDataflow(4, 4, 1)
        with pytest.raises(ValueError):
            dataflow.compute_cycles(0)
        with pytest.raises(ValueError):
            dataflow.input_arrival_cycle(-1, 0)
        with pytest.raises(ValueError):
            dataflow.row_group(4)
        with pytest.raises(ValueError):
            dataflow.col_group(-1)
