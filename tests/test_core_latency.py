"""Tests for the latency equations (Eqs. 1-4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import ArrayFlexConfig
from repro.core.latency import (
    LatencyModel,
    arrayflex_tile_cycles,
    arrayflex_tile_cycles_horizontal_only,
    arrayflex_tile_cycles_vertical_only,
    arrayflex_total_cycles,
    conventional_tile_cycles,
    conventional_total_cycles,
    tile_count,
)
from repro.nn.gemm_mapping import GemmShape


class TestPerTileEquations:
    def test_eq1_example(self):
        """Eq. (1): L = 2R + C + T - 2."""
        assert conventional_tile_cycles(128, 128, 196) == 2 * 128 + 128 + 196 - 2

    def test_eq3_reduces_to_eq1_at_k1(self):
        for rows, cols, t in [(8, 8, 5), (128, 128, 196), (132, 132, 49)]:
            assert arrayflex_tile_cycles(rows, cols, t, 1) == conventional_tile_cycles(
                rows, cols, t
            )

    def test_eq3_example(self):
        """Eq. (3): L(k) = R + R/k + C/k + T - 2."""
        assert arrayflex_tile_cycles(128, 128, 49, 4) == 128 + 32 + 32 + 49 - 2

    def test_ceiling_for_non_dividing_depth(self):
        assert arrayflex_tile_cycles(10, 10, 1, 4) == 10 + 3 + 3 + 1 - 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            conventional_tile_cycles(0, 8, 1)
        with pytest.raises(ValueError):
            arrayflex_tile_cycles(8, 8, 1, 0)

    @given(
        st.integers(1, 512), st.integers(1, 512), st.integers(1, 4096), st.integers(1, 8)
    )
    def test_collapsing_never_increases_cycles(self, rows, cols, t, k):
        assert arrayflex_tile_cycles(rows, cols, t, k) <= conventional_tile_cycles(
            rows, cols, t
        )

    @given(st.integers(2, 256), st.integers(2, 256), st.integers(1, 4096))
    def test_cycles_monotone_in_depth(self, rows, cols, t):
        cycles = [arrayflex_tile_cycles(rows, cols, t, k) for k in (1, 2, 4, 8)]
        assert cycles == sorted(cycles, reverse=True)

    @given(st.integers(1, 256), st.integers(1, 256), st.integers(1, 4096), st.integers(1, 8))
    def test_direction_ablations_bracket_full_collapse(self, rows, cols, t, k):
        both = arrayflex_tile_cycles(rows, cols, t, k)
        vertical = arrayflex_tile_cycles_vertical_only(rows, cols, t, k)
        horizontal = arrayflex_tile_cycles_horizontal_only(rows, cols, t, k)
        conventional = conventional_tile_cycles(rows, cols, t)
        assert both <= vertical <= conventional
        assert both <= horizontal <= conventional


class TestTiling:
    def test_tile_count_eq2(self):
        assert tile_count(2304, 256, 128, 128) == 18 * 2

    def test_tile_count_with_remainders(self):
        assert tile_count(130, 129, 128, 128) == 2 * 2

    def test_total_cycles_eq2(self):
        gemm = GemmShape(m=256, n=2304, t=196)
        assert conventional_total_cycles(gemm, 128, 128) == 36 * conventional_tile_cycles(
            128, 128, 196
        )

    def test_total_cycles_eq4(self):
        gemm = GemmShape(m=512, n=2304, t=49)
        assert arrayflex_total_cycles(gemm, 128, 128, 4) == 18 * 4 * arrayflex_tile_cycles(
            128, 128, 49, 4
        )


class TestLatencyModelWrapper:
    @pytest.fixture(scope="class")
    def model(self):
        return LatencyModel(ArrayFlexConfig(rows=128, cols=128))

    def test_wrapper_matches_free_functions(self, model):
        gemm = GemmShape(m=512, n=2304, t=49)
        assert model.total_cycles(gemm, 2) == arrayflex_total_cycles(gemm, 128, 128, 2)
        assert model.conventional_total_cycles(gemm) == conventional_total_cycles(
            gemm, 128, 128
        )

    def test_tile_count(self, model):
        assert model.tile_count(GemmShape(m=256, n=2304, t=196)) == 36

    def test_cycle_reduction_fraction(self, model):
        gemm = GemmShape(m=512, n=2304, t=49)
        reduction = model.cycle_reduction(gemm, 4)
        # (2R + C) - (R + R/4 + C/4) = 384 - 192 = 192 cycles out of 431.
        assert reduction == pytest.approx(192 / 431, rel=1e-6)

    def test_paper_layer20_cycle_counts(self, model):
        """Cross-check the Fig. 5 arithmetic at the paper's array size."""
        gemm = GemmShape(m=256, n=2304, t=196)
        assert model.conventional_total_cycles(gemm) == 36 * 578
        assert model.total_cycles(gemm, 2) == 36 * 450
