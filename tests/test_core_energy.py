"""Tests for the energy / power / EDP accounting."""

import pytest

from repro.core.config import ArrayFlexConfig
from repro.core.energy import EnergyModel, LayerEnergyReport, RunEnergyReport
from repro.nn.gemm_mapping import GemmShape


@pytest.fixture(scope="module")
def energy():
    return EnergyModel(ArrayFlexConfig(rows=128, cols=128))


class TestLayerReports:
    def test_layer_energy_is_power_times_time(self, energy):
        report = energy.arrayflex_layer_report(
            GemmShape(m=1, n=1, t=1), collapse_depth=2, frequency_ghz=1.7,
            execution_time_ns=2000.0,
        )
        assert report.energy_nj == pytest.approx(report.power_mw * 2000.0 / 1000.0)

    def test_conventional_report_mode_is_one(self, energy):
        report = energy.conventional_layer_report(
            GemmShape(m=1, n=1, t=1), frequency_ghz=2.0, execution_time_ns=10.0
        )
        assert report.collapse_depth == 1

    def test_mode_power_ordering(self, energy):
        """k = 1 costs more than the baseline; k = 4 costs much less."""
        conventional = energy.conventional_power_mw(2.0)
        assert energy.arrayflex_power_mw(1, 1.8) > conventional
        assert energy.arrayflex_power_mw(2, 1.7) < conventional
        assert energy.arrayflex_power_mw(4, 1.4) < energy.arrayflex_power_mw(2, 1.7)


class TestRunReports:
    def test_run_report_aggregation(self, energy):
        reports = [
            LayerEnergyReport(GemmShape(m=1, n=1, t=1), 1, power_mw=100.0, execution_time_ns=10.0),
            LayerEnergyReport(GemmShape(m=1, n=1, t=1), 2, power_mw=50.0, execution_time_ns=30.0),
        ]
        run = EnergyModel.run_report(reports)
        assert run.total_time_ns == 40.0
        assert run.total_energy_nj == pytest.approx(1.0 + 1.5)
        # Time-weighted average power: 2.5 nJ / 40 ns = 62.5 mW.
        assert run.average_power_mw == pytest.approx(62.5)

    def test_empty_run(self):
        run = EnergyModel.run_report([])
        assert run.average_power_mw == 0.0
        assert run.energy_delay_product == 0.0

    def test_edp_definition(self):
        run = RunEnergyReport(total_time_ns=10.0, total_energy_nj=3.0)
        assert run.energy_delay_product == pytest.approx(30.0)


class TestComparisons:
    def test_power_saving(self):
        conventional = RunEnergyReport(total_time_ns=100.0, total_energy_nj=10.0)
        arrayflex = RunEnergyReport(total_time_ns=90.0, total_energy_nj=7.65)
        saving = EnergyModel.power_saving(conventional, arrayflex)
        assert saving == pytest.approx(1.0 - (7.65 / 90.0) / (10.0 / 100.0))

    def test_edp_gain(self):
        conventional = RunEnergyReport(total_time_ns=100.0, total_energy_nj=10.0)
        arrayflex = RunEnergyReport(total_time_ns=90.0, total_energy_nj=8.0)
        assert EnergyModel.edp_gain(conventional, arrayflex) == pytest.approx(
            (10.0 * 100.0) / (8.0 * 90.0)
        )

    def test_edp_gain_with_zero_arrayflex(self):
        conventional = RunEnergyReport(total_time_ns=1.0, total_energy_nj=1.0)
        degenerate = RunEnergyReport(total_time_ns=0.0, total_energy_nj=0.0)
        assert EnergyModel.edp_gain(conventional, degenerate) == float("inf")

    def test_power_saving_zero_baseline(self):
        degenerate = RunEnergyReport(total_time_ns=0.0, total_energy_nj=0.0)
        assert EnergyModel.power_saving(degenerate, degenerate) == 0.0
