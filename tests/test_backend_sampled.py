"""Tests for the calibrated sampled-simulation backend.

Three contracts on top of the shared parity harness:

* **seeded determinism** — the same ``sample_seed`` yields bit-identical
  results across fresh backends, thread-pool serving and process-pool
  design-space sweeps; different seeds stay within the self-reported
  ``error_bound`` of the exact cycle backend on the CNN suite;
* **degenerate sampling** — layers with fewer tiles than the sample size
  fall back to exact cycle simulation (``error_bound == 0``), and
  exhaustive sampling (``sample_fraction=1.0``) is bit-identical to
  :class:`~repro.backends.CycleAccurateBackend`;
* **calibration honesty** — the streaming-probe extrapolation refuses a
  non-affine measurement instead of extrapolating a wrong model.
"""

import pickle

import pytest

from repro.backends import (
    BatchedCachedBackend,
    CycleAccurateBackend,
    SampledSimBackend,
)
from repro.core.arrayflex import ArrayFlexAccelerator
from repro.core.config import ArrayFlexConfig
from repro.core.design_space import DesignPoint, DesignSpaceExplorer
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import mobilenet_v1
from repro.serve import ScheduleRequest, SchedulingService


@pytest.fixture(scope="module")
def config():
    return ArrayFlexConfig(rows=16, cols=16)


@pytest.fixture(scope="module")
def cnn_exact_schedules(config):
    """Exact cycle-backend schedules of the CNN suite, computed once."""
    from repro.workloads import get_suite

    backend = CycleAccurateBackend()
    return [
        (workload, backend.schedule_model(workload, config))
        for workload in get_suite("cnn")
    ]


#: A workload with every edge-tile combination, a repeat, and streamed
#: dimensions on both sides of the probe cap.
MIXED = [
    GemmShape(m=20, n=33, t=6, name="edge-both"),
    GemmShape(m=16, n=16, t=40, name="exact"),
    GemmShape(m=7, n=50, t=3, name="edge-n"),
    GemmShape(m=24, n=40, t=300, name="tall"),
    GemmShape(m=20, n=33, t=6, name="edge-both-repeat"),
]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_fraction": 0.0},
            {"sample_fraction": 1.5},
            {"min_tiles_per_shape": 0},
            {"sample_seed": -1},
            {"error_target": -0.1},
            {"max_probe_t": 1},
            {"cache_size": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SampledSimBackend(**kwargs)

    def test_decision_identity_carries_every_knob(self):
        backend = SampledSimBackend(
            sample_fraction=0.25,
            min_tiles_per_shape=3,
            sample_seed=7,
            error_target=0.01,
            max_probe_t=16,
        )
        assert backend.decision_identity() == (
            "sampled", 7, 0.25, 3, 0.01, 16,
        )

    def test_store_config_key_differs_from_plain_config_key(self, config):
        backend = SampledSimBackend()
        assert backend.store_config_key(config) != config.cache_key()
        assert backend.store_config_key(config)[:-1] == config.cache_key()


class TestSeededDeterminism:
    def test_same_seed_is_bit_identical_across_backends(self, config):
        first = SampledSimBackend(sample_seed=11).schedule_model(
            MIXED, config, model_name="mixed"
        )
        second = SampledSimBackend(sample_seed=11).schedule_model(
            MIXED, config, model_name="mixed"
        )
        assert first.layers == second.layers
        assert [layer.error_bound for layer in first.layers] == [
            layer.error_bound for layer in second.layers
        ]

    def test_real_model_deterministic(self, config):
        model = mobilenet_v1()
        first = SampledSimBackend(sample_seed=5).schedule_model(model, config)
        second = SampledSimBackend(sample_seed=5).schedule_model(model, config)
        assert first.layers == second.layers

    def test_thread_pool_serving_matches_direct(self, config):
        backend = SampledSimBackend(sample_seed=3)
        direct = SampledSimBackend(sample_seed=3).schedule_model(
            MIXED, config, model_name="mixed"
        )
        with SchedulingService(backend=backend, max_workers=4) as service:
            results = service.schedule_all(
                [
                    ScheduleRequest(
                        model=tuple(MIXED), config=config, model_name="mixed"
                    )
                    for _ in range(4)
                ]
            )
        for result in results:
            assert result.layers == direct.layers

    def test_process_pool_sweep_matches_serial(self):
        points = [
            DesignPoint(rows=8, cols=8, supported_depths=(1, 2, 4)),
            DesignPoint(rows=16, cols=16, supported_depths=(1, 2)),
        ]
        models = [mobilenet_v1()]
        serial = DesignSpaceExplorer(
            models, backend=SampledSimBackend(sample_seed=2)
        ).explore(points)
        fanned = DesignSpaceExplorer(
            models, backend=SampledSimBackend(sample_seed=2), max_workers=2
        ).explore(points)
        assert fanned == serial

    def test_pickled_backend_schedules_identically(self, config):
        backend = SampledSimBackend(sample_seed=9)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.decision_identity() == backend.decision_identity()
        assert (
            clone.schedule_model(MIXED, config, model_name="m").layers
            == backend.schedule_model(MIXED, config, model_name="m").layers
        )

    @pytest.mark.parametrize("seed", [1, 2])
    def test_other_seeds_stay_within_bound_of_cycle_on_cnn_suite(
        self, seed, config, cnn_exact_schedules
    ):
        """Different seeds: every per-layer estimate within its bound."""
        sampled_backend = SampledSimBackend(sample_seed=seed)
        for workload, exact in cnn_exact_schedules:
            sampled = sampled_backend.schedule_model(workload, config)
            for exact_layer, sampled_layer in zip(exact.layers, sampled.layers):
                bound = sampled_layer.error_bound
                assert bound is not None and bound >= 0.0
                assert abs(sampled_layer.cycles - exact_layer.cycles) <= (
                    bound * exact_layer.cycles + 1e-9
                )


class TestDegenerateSampling:
    def test_fewer_tiles_than_sample_size_is_exact(self, config):
        """Single-tile layers: exact cycle simulation, zero error bound."""
        gemm = GemmShape(m=6, n=7, t=9, name="one-tile")
        sampled = SampledSimBackend(min_tiles_per_shape=5).schedule_layer(
            gemm, config
        )
        exact = CycleAccurateBackend().schedule_layer(gemm, config)
        assert sampled == exact
        assert sampled.error_bound == 0.0
        estimate = SampledSimBackend(min_tiles_per_shape=5).layer_estimate(
            gemm, config
        )
        assert estimate.exhaustive
        assert estimate.simulated_tiles == estimate.total_tiles == 1

    def test_exhaustive_sampling_is_bit_identical_to_cycle(self, config):
        exhaustive = SampledSimBackend(sample_fraction=1.0).schedule_model(
            MIXED, config, model_name="mixed"
        )
        exact = CycleAccurateBackend().schedule_model(
            MIXED, config, model_name="mixed"
        )
        assert exhaustive.layers == exact.layers
        assert [layer.cycles for layer in exhaustive.layers] == [
            layer.cycles for layer in exact.layers
        ]
        assert all(layer.error_bound == 0.0 for layer in exhaustive.layers)
        assert exhaustive.max_error_bound() == 0.0

    def test_exhaustive_sampling_without_probes_matches_too(self, config):
        """Disabling probe truncation must not change the numbers."""
        with_probes = SampledSimBackend(sample_fraction=1.0).schedule_model(
            MIXED, config, model_name="mixed"
        )
        without = SampledSimBackend(
            sample_fraction=1.0, max_probe_t=None
        ).schedule_model(MIXED, config, model_name="mixed")
        assert with_probes.layers == without.layers


class TestErrorBoundAndEstimates:
    def test_every_layer_reports_a_bound(self, config):
        schedule = SampledSimBackend().schedule_model(
            MIXED, config, model_name="mixed"
        )
        for layer in schedule.layers:
            assert layer.error_bound is not None
            assert layer.error_bound >= 0.0

    def test_exact_backends_report_no_bound(self, config):
        for backend in (BatchedCachedBackend(), CycleAccurateBackend()):
            schedule = backend.schedule_model(MIXED, config, model_name="mixed")
            assert all(layer.error_bound is None for layer in schedule.layers)
            assert schedule.max_error_bound() == 0.0

    def test_layer_estimate_exposes_strata(self, config):
        gemm = GemmShape(m=20, n=33, t=6, name="edge-both")
        estimate = SampledSimBackend().layer_estimate(gemm, config)
        # 33x20 on 16x16: 3x2 tiles in four distinct shapes.
        assert estimate.total_tiles == 6
        assert {(s.n_size, s.m_size) for s in estimate.strata} == {
            (16, 16), (16, 4), (1, 16), (1, 4),
        }
        assert sum(s.population for s in estimate.strata) == 6
        assert all(1 <= s.sampled <= s.population for s in estimate.strata)

    def test_error_target_auto_mode_meets_target(self, config):
        backend = SampledSimBackend(error_target=0.05)
        schedule = backend.schedule_model(MIXED, config, model_name="mixed")
        assert all(layer.error_bound <= 0.05 for layer in schedule.layers)

    def test_decision_cache_hits_on_repeats(self, config):
        backend = SampledSimBackend()
        backend.schedule_model(MIXED, config, model_name="mixed")
        info = backend.cache_info()
        # The repeated edge-both shape is decided once.
        assert info["misses"] == 4
        assert info["hits"] == 1
        backend.schedule_model(MIXED, config, model_name="mixed")
        assert backend.cache_info()["misses"] == 4
        backend.cache_clear()
        assert backend.cache_info()["size"] == 0

    def test_calibration_refuses_non_affine_measurements(self, config, monkeypatch):
        """A non-affine T-response must fail loudly, not extrapolate."""
        backend = SampledSimBackend()
        gemm = GemmShape(m=8, n=8, t=500, name="tall")

        def quadratic(config, depth, t_rows, items):
            return [t_rows * t_rows for _ in items]  # not affine in T

        monkeypatch.setattr(backend, "_simulate_batch", quadratic)
        with pytest.raises(RuntimeError, match="calibration failed"):
            backend.schedule_layer(gemm, config)


class TestNeymanAllocation:
    def test_equal_pilot_variances_degenerate_to_uniform_sizes(self, config):
        """The real engine's timing is data-independent, so every pilot
        variance is equal and the allocation must be exactly the uniform
        ``_allocation`` sizes — the exact-engine numbers never move."""
        backend = SampledSimBackend()
        gemm = GemmShape(m=170, n=200, t=24, name="multi-strata")
        estimate = backend.layer_estimate(gemm, config)
        for stratum in estimate.strata:
            assert stratum.sampled == backend._allocation(stratum.population)

    def test_unequal_variances_shift_budget_not_total(self):
        backend = SampledSimBackend(sample_fraction=0.1)
        shapes = [(16, 16), (16, 10), (10, 16)]
        populations = {(16, 16): 100, (16, 10): 50, (10, 16): 50}
        pilots = {shape: 2 for shape in shapes}
        variances = {(16, 16): 900.0, (16, 10): 0.0, (10, 16): 0.0}
        budget = sum(
            backend._allocation(populations[shape]) for shape in shapes
        )
        sizes = backend._neyman_allocation(
            shapes, populations, pilots, variances, budget
        )
        assert sum(sizes.values()) == budget
        assert all(
            pilots[shape] <= sizes[shape] <= populations[shape]
            for shape in shapes
        )
        # All spare budget flows to the only stratum with variance.
        assert sizes[(16, 10)] == sizes[(10, 16)] == 2
        assert sizes[(16, 16)] == budget - 4

    def test_overflow_past_a_small_population_is_redistributed(self):
        backend = SampledSimBackend(sample_fraction=0.5)
        shapes = [(16, 16), (16, 10)]
        populations = {(16, 16): 4, (16, 10): 100}
        pilots = {(16, 16): 2, (16, 10): 2}
        # The tiny stratum's huge variance wants more samples than it has
        # tiles; the clamped-off surplus must land on the other stratum.
        variances = {(16, 16): 1e9, (16, 10): 1.0}
        budget = sum(
            backend._allocation(populations[shape]) for shape in shapes
        )
        sizes = backend._neyman_allocation(
            shapes, populations, pilots, variances, budget
        )
        assert sizes[(16, 16)] == populations[(16, 16)]
        assert sum(sizes.values()) == budget

    def test_bound_never_regresses_vs_uniform_at_equal_budget(
        self, config, monkeypatch
    ):
        """With a genuinely heteroscedastic engine, the Neyman split's
        finite-population bound is at most the uniform split's."""
        gemm = GemmShape(m=410, n=410, t=20, name="hetero")

        def synthetic(config, depth, t_rows, items):
            # One high-variance stratum, the rest deterministic.
            return [
                1_000 * n + 10 * m + ((index % 5) * 40 if n == m == 16 else 0)
                for n, m, index in items
            ]

        neyman = SampledSimBackend(sample_fraction=0.1)
        monkeypatch.setattr(neyman, "_simulate_batch", synthetic)
        uniform = SampledSimBackend(sample_fraction=0.1)
        monkeypatch.setattr(uniform, "_simulate_batch", synthetic)
        monkeypatch.setattr(
            uniform,
            "_neyman_allocation",
            lambda shapes, populations, pilots, variances, budget: {
                shape: uniform._allocation(populations[shape])
                for shape in shapes
            },
        )

        from_neyman = neyman.estimate_layer_cycles(config, gemm, 1)
        from_uniform = uniform.estimate_layer_cycles(config, gemm, 1)
        assert from_neyman.simulated_tiles == from_uniform.simulated_tiles
        assert from_neyman.error_bound <= from_uniform.error_bound + 1e-12


class TestModelTotals:
    def test_totals_match_schedule_sums(self, config):
        totals = SampledSimBackend(sample_seed=4).schedule_model_totals(
            MIXED, config, model_name="mixed"
        )
        schedule = SampledSimBackend(sample_seed=4).schedule_model(
            MIXED, config, model_name="mixed"
        )
        assert totals.time_ns == schedule.total_time_ns
        assert totals.energy_nj == schedule.total_energy_nj

    def test_totals_carry_time_weighted_error_bound(self, config):
        backend = SampledSimBackend(sample_seed=4)
        totals = backend.schedule_model_totals(MIXED, config, model_name="mixed")
        schedule = SampledSimBackend(sample_seed=4).schedule_model(
            MIXED, config, model_name="mixed"
        )
        weighted = 0.0
        for layer in schedule.layers:
            weighted += (layer.error_bound or 0.0) * layer.execution_time_ns
        assert totals.error_bound == pytest.approx(
            weighted / schedule.total_time_ns, rel=1e-12
        )

    def test_exhaustive_totals_report_zero_bound(self, config):
        totals = SampledSimBackend(sample_fraction=1.0).schedule_model_totals(
            MIXED, config, model_name="mixed"
        )
        assert totals.error_bound == 0.0

    def test_conventional_totals_delegate_to_exact_path(self, config):
        backend = SampledSimBackend()
        totals = backend.schedule_model_totals(
            MIXED, config, model_name="mixed", conventional=True
        )
        schedule = backend.schedule_model_conventional(
            MIXED, config, model_name="mixed"
        )
        assert totals.error_bound is None
        assert totals.time_ns == schedule.total_time_ns
        assert totals.energy_nj == schedule.total_energy_nj


class TestFacadeAndExplorerWiring:
    def test_accelerator_accepts_sampled_by_name(self):
        accel = ArrayFlexAccelerator(rows=16, cols=16, backend="sampled")
        assert isinstance(accel.backend, SampledSimBackend)
        schedule = accel.run_model(MIXED)
        reference = ArrayFlexAccelerator(rows=16, cols=16).run_model(MIXED)
        assert schedule.layers == reference.layers

    def test_explorer_accepts_sampled_by_name(self):
        explorer = DesignSpaceExplorer([mobilenet_v1()], backend="sampled")
        assert isinstance(explorer.backend, SampledSimBackend)

    def test_accelerator_cache_dir_with_sampled_backend(self, tmp_path):
        accel = ArrayFlexAccelerator(
            rows=16, cols=16, backend=SampledSimBackend(), cache_dir=tmp_path
        )
        assert isinstance(accel.backend, SampledSimBackend)
        assert accel.backend.store is not None
        accel.run_model(MIXED)
        assert accel.backend.store.stats()["entries"] > 0
