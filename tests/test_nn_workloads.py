"""Tests for workload suites and synthetic generators."""

import numpy as np
import pytest

from repro.nn.workloads import (
    WorkloadSuite,
    paper_suite,
    random_gemm_shapes,
    random_int_matrices,
    synthetic_gemm_sweep,
)


class TestPaperSuite:
    def test_contains_three_models(self):
        suite = paper_suite()
        assert suite.model_names == ["ResNet-34", "MobileNetV1", "ConvNeXt-T"]

    def test_total_layers(self):
        suite = paper_suite()
        assert suite.total_layers == 34 + 28 + 59

    def test_gemms_by_model(self):
        gemms = paper_suite().gemms_by_model()
        assert len(gemms["ResNet-34"]) == 34

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSuite(name="empty", models=())


class TestSyntheticSweep:
    def test_cartesian_product_size(self):
        shapes = synthetic_gemm_sweep([1, 2], [3], [4, 5, 6])
        assert len(shapes) == 6

    def test_names_are_unique(self):
        shapes = synthetic_gemm_sweep([1, 2], [3, 4], [5])
        assert len({s.name for s in shapes}) == len(shapes)

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError):
            synthetic_gemm_sweep([], [1], [1])


class TestRandomGenerators:
    def test_random_shapes_reproducible(self):
        assert [s.as_tuple() for s in random_gemm_shapes(5, seed=3)] == [
            s.as_tuple() for s in random_gemm_shapes(5, seed=3)
        ]

    def test_random_shapes_respect_bounds(self):
        for shape in random_gemm_shapes(50, seed=1, max_m=16, max_n=8, max_t=4):
            assert 1 <= shape.m <= 16
            assert 1 <= shape.n <= 8
            assert 1 <= shape.t <= 4

    def test_random_shapes_invalid_count(self):
        with pytest.raises(ValueError):
            random_gemm_shapes(0)

    def test_random_matrices_shapes_and_range(self):
        a, b = random_int_matrices(3, 4, 5, seed=0, low=-2, high=2)
        assert a.shape == (3, 4) and b.shape == (4, 5)
        assert a.min() >= -2 and a.max() <= 2

    def test_random_matrices_reproducible(self):
        a1, b1 = random_int_matrices(3, 4, 5, seed=9)
        a2, b2 = random_int_matrices(3, 4, 5, seed=9)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)

    def test_random_matrices_invalid_args(self):
        with pytest.raises(ValueError):
            random_int_matrices(0, 1, 1)
        with pytest.raises(ValueError):
            random_int_matrices(1, 1, 1, low=5, high=5)
