"""Tests for the pluggable execution-backend layer.

The contract under test: every backend implements the same
``schedule_layer`` / ``schedule_model`` protocol and every registered
backend is *numerically interchangeable* — the batched/cached backend
bit-identically, the cycle-accurate backend because the simulator is
cycle-exact with respect to Eqs. (1)/(3), and the sampled backend
because its seeded stratified estimator is exact on this engine.  The
per-backend parity assertions live in one shared parametrized harness
(``tests/backend_harness.py``) that runs every ``BACKENDS`` entry
through the same workload/config matrix, so future backends get parity
coverage by registering one factory there.
"""

import pytest
from hypothesis import given, settings, strategies as st

from backend_harness import (
    BACKEND_FACTORIES,
    assert_backend_parity,
    make_backend,
    parity_cases,
    parity_configs,
    parity_workloads,
)

from repro.backends import (
    BACKENDS,
    AnalyticalBackend,
    BatchedCachedBackend,
    CycleAccurateBackend,
    ExecutionBackend,
    ExecutionBackendProtocol,
    create_backend,
)
from repro.core.arrayflex import ArrayFlexAccelerator
from repro.core.config import ArrayFlexConfig
from repro.core.design_space import DesignPoint, DesignSpaceExplorer
from repro.core.latency import arrayflex_total_cycles
from repro.core.scheduler import Scheduler
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import convnext_tiny, mobilenet_v1, resnet34


@pytest.fixture(scope="module")
def config():
    return ArrayFlexConfig.paper_128x128()


@pytest.fixture(scope="module")
def analytical():
    return AnalyticalBackend()


@pytest.fixture(scope="module")
def batched():
    return BatchedCachedBackend()


class TestRegistry:
    def test_names_cover_the_four_backends(self):
        assert set(BACKENDS) == {"analytical", "batched", "cycle", "sampled"}

    def test_every_registered_backend_has_parity_coverage(self):
        """Registering a backend without a harness factory fails loudly."""
        assert set(BACKEND_FACTORIES) == set(BACKENDS)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_create_by_name(self, name):
        backend = create_backend(name)
        assert isinstance(backend, ExecutionBackend)
        assert isinstance(backend, ExecutionBackendProtocol)
        assert backend.name == name

    def test_none_resolves_to_analytical(self):
        assert isinstance(create_backend(None), AnalyticalBackend)

    def test_instance_passes_through(self):
        backend = BatchedCachedBackend()
        assert create_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("verilog")

    def test_duck_typed_protocol_instance_accepted(self):
        """An object satisfying ExecutionBackendProtocol passes through
        create_backend without subclassing ExecutionBackend."""

        class DuckBackend:
            name = "duck"

            def schedule_layer(self, gemm, config, index=1):
                return AnalyticalBackend().schedule_layer(gemm, config, index)

            def schedule_model(self, model, config, model_name=None):
                return AnalyticalBackend().schedule_model(model, config, model_name)

            def schedule_model_conventional(self, model, config, model_name=None):
                return AnalyticalBackend().schedule_model_conventional(
                    model, config, model_name
                )

        duck = DuckBackend()
        assert create_backend(duck) is duck


class TestAnalyticalMatchesScheduler:
    """The analytical backend is the refactored home of the old scheduler path."""

    def test_model_schedule_identical(self, config, analytical):
        scheduler = Scheduler(config)
        model = resnet34()
        via_backend = analytical.schedule_model(model, config)
        via_scheduler = scheduler.schedule_model_arrayflex(model)
        assert via_backend.layers == via_scheduler.layers
        assert via_backend.model_name == via_scheduler.model_name

    def test_conventional_schedule_identical(self, config, analytical):
        scheduler = Scheduler(config)
        model = mobilenet_v1()
        via_backend = analytical.schedule_model_conventional(model, config)
        via_scheduler = scheduler.schedule_model_conventional(model)
        assert via_backend.layers == via_scheduler.layers


class TestParityHarness:
    """Every registered backend through the same workload/config matrix.

    The shared harness is the refactored home of the per-backend parity
    classes this file used to carry; one parametrized cell per
    (backend, workload, config) combination, asserted against the
    analytical reference.
    """

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    @pytest.mark.parametrize(
        "case_id,workload_key,config_key",
        parity_cases(),
        ids=[case_id for case_id, _, _ in parity_cases()],
    )
    def test_backend_matches_reference(
        self, analytical, name, case_id, workload_key, config_key
    ):
        assert_backend_parity(
            make_backend(name),
            parity_workloads()[workload_key],
            parity_configs()[config_key],
            reference=analytical,
        )


class TestBatchedParity:
    """Batched-specific bit-parity beyond the shared matrix: the paper's
    full-size configurations and CNN models (cheap on closed-form-only
    backends, so not part of the every-backend matrix)."""

    @pytest.mark.parametrize(
        "model_builder", [resnet34, convnext_tiny, mobilenet_v1]
    )
    def test_model_totals_identical(self, config, analytical, batched, model_builder):
        model = model_builder()
        reference = analytical.schedule_model(model, config)
        fast = batched.schedule_model(model, config)
        assert fast.layers == reference.layers
        assert fast.total_cycles == reference.total_cycles
        assert fast.total_time_ns == reference.total_time_ns
        assert fast.total_energy_nj == reference.total_energy_nj
        assert fast.energy_delay_product == reference.energy_delay_product

    def test_conventional_parity(self, config, analytical, batched):
        model = convnext_tiny()
        reference = analytical.schedule_model_conventional(model, config)
        fast = batched.schedule_model_conventional(model, config)
        assert fast.layers == reference.layers

    def test_parity_on_256(self, analytical, batched):
        config = ArrayFlexConfig.paper_256x256()
        model = resnet34()
        assert batched.schedule_model(model, config).layers == (
            analytical.schedule_model(model, config).layers
        )

    @settings(max_examples=60, deadline=None)
    @given(
        m=st.integers(1, 4096),
        n=st.integers(1, 4096),
        t=st.integers(1, 8192),
    )
    def test_single_layer_parity_property(self, m, n, t):
        """Property: for any GEMM the two backends take the same decision."""
        config = ArrayFlexConfig.paper_128x128()
        gemm = GemmShape(m=m, n=n, t=t, name="prop")
        reference = AnalyticalBackend().schedule_layer(gemm, config)
        fast = BatchedCachedBackend().schedule_layer(gemm, config)
        assert fast == reference

    def test_fig5_style_depth_set(self, analytical, batched):
        """Parity also holds for non-power-of-two mode sets (132x132, k<=4)."""
        config = ArrayFlexConfig.fig5_132x132()
        gemm = GemmShape(m=256, n=2304, t=196, name="rn34-l20")
        assert batched.schedule_layer(gemm, config) == analytical.schedule_layer(
            gemm, config
        )


class TestBatchedCache:
    def test_repeat_model_hits_cache(self, config):
        backend = BatchedCachedBackend()
        model = resnet34()
        first = backend.schedule_model(model, config)
        misses_after_first = backend.cache_info()["misses"]
        second = backend.schedule_model(model, config)
        info = backend.cache_info()
        assert second.layers == first.layers
        assert info["misses"] == misses_after_first
        assert info["hits"] >= len(model.gemms())

    def test_cache_spans_configs_without_collisions(self):
        backend = BatchedCachedBackend()
        gemm = GemmShape(m=512, n=2304, t=49, name="l28")
        small = backend.schedule_layer(gemm, ArrayFlexConfig.paper_128x128())
        large = backend.schedule_layer(gemm, ArrayFlexConfig.paper_256x256())
        assert small.cycles != large.cycles  # different geometries, both cached
        assert backend.cache_info()["size"] == 2

    def test_lru_eviction_bounds_size(self, config):
        backend = BatchedCachedBackend(cache_size=8)
        for t in range(1, 30):
            backend.schedule_layer(GemmShape(m=64, n=64, t=t, name="x"), config)
        assert backend.cache_info()["size"] <= 8

    def test_cache_clear(self, config):
        backend = BatchedCachedBackend()
        backend.schedule_layer(GemmShape(m=8, n=8, t=8, name="x"), config)
        backend.cache_clear()
        assert backend.cache_info() == {
            "hits": 0,
            "misses": 0,
            "store_hits": 0,
            "size": 0,
            "max_size": backend.cache_size,
        }

    def test_invalid_cache_size_rejected(self):
        with pytest.raises(ValueError):
            BatchedCachedBackend(cache_size=0)


class TestCycleAccurateParity:
    """Cycle-backend specifics beyond the shared matrix: random-GEMM
    property parity and measurement memoisation."""

    @settings(max_examples=10, deadline=None)
    @given(
        m=st.integers(1, 24),
        n=st.integers(1, 24),
        t=st.integers(1, 16),
        seed=st.integers(0, 100),
    )
    def test_small_random_gemms_match_analytical(self, m, n, t, seed):
        config = ArrayFlexConfig(rows=8, cols=8)
        gemm = GemmShape(m=m, n=n, t=t, name="rand")
        cycle_backend = CycleAccurateBackend(measurement_seed=seed)
        measured = cycle_backend.schedule_layer(gemm, config)
        modelled = AnalyticalBackend().schedule_layer(gemm, config)
        assert measured == modelled
        assert measured.cycles == arrayflex_total_cycles(
            gemm, config.rows, config.cols, measured.collapse_depth
        )

    def test_measurements_are_memoised(self):
        config = ArrayFlexConfig(rows=8, cols=8)
        backend = CycleAccurateBackend()
        gemms = [GemmShape(m=9, n=9, t=5, name=f"g{i}") for i in range(4)]
        schedule = backend.schedule_model(gemms, config, model_name="repeat")
        assert len(schedule.layers) == 4
        # All four layers share (rows, cols, T, k): one simulation total.
        assert len(backend._tile_cycles) == 1


class TestFacadeIntegration:
    def test_accelerator_accepts_backend_instance(self):
        backend = BatchedCachedBackend()
        accel = ArrayFlexAccelerator(rows=64, cols=64, backend=backend)
        assert accel.backend is backend
        schedule = accel.run_model(resnet34())
        reference = ArrayFlexAccelerator(rows=64, cols=64).run_model(resnet34())
        assert schedule.layers == reference.layers

    def test_accelerator_accepts_backend_name(self):
        accel = ArrayFlexAccelerator(backend="batched")
        assert isinstance(accel.backend, BatchedCachedBackend)

    def test_accelerator_default_backend_is_analytical(self):
        assert isinstance(ArrayFlexAccelerator().backend, AnalyticalBackend)

    def test_comparison_report_backend_independent(self):
        model = mobilenet_v1()
        default = ArrayFlexAccelerator().compare_with_conventional(model)
        fast = ArrayFlexAccelerator(backend="batched").compare_with_conventional(model)
        assert fast.summary() == default.summary()


class _UnregisteredBackend(AnalyticalBackend):
    """Custom subclass outside the registry (module-level so it pickles)."""

    name = "custom-analytical"


class TestDesignSpaceBackends:
    POINTS = [
        DesignPoint(rows=64, cols=64, supported_depths=(1, 2, 4)),
        DesignPoint(rows=128, cols=128, supported_depths=(1, 2)),
    ]

    @pytest.fixture(scope="class")
    def models(self):
        return [resnet34(), mobilenet_v1()]

    def test_default_backend_is_batched(self, models):
        assert isinstance(DesignSpaceExplorer(models).backend, BatchedCachedBackend)

    def test_backend_choice_does_not_change_results(self, models):
        fast = DesignSpaceExplorer(models).explore(self.POINTS)
        reference = DesignSpaceExplorer(models, backend="analytical").explore(
            self.POINTS
        )
        assert fast == reference

    def test_process_pool_matches_serial(self, models):
        serial = DesignSpaceExplorer(models).explore(self.POINTS)
        fanned = DesignSpaceExplorer(models, max_workers=2).explore(self.POINTS)
        assert fanned == serial

    def test_explore_level_worker_override(self, models):
        explorer = DesignSpaceExplorer(models)
        assert explorer.explore(self.POINTS, max_workers=2) == explorer.explore(
            self.POINTS
        )

    def test_invalid_worker_count_rejected(self, models):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(models, max_workers=0)

    def test_custom_backend_instance_survives_process_pool(self, models):
        """The backend instance (not a registry name) is shipped to workers,
        so unregistered subclasses and tuned configurations both work."""
        custom = DesignSpaceExplorer(
            models, backend=_UnregisteredBackend(), max_workers=2
        ).explore(self.POINTS)
        tuned = DesignSpaceExplorer(
            models, backend=BatchedCachedBackend(cache_size=7), max_workers=2
        ).explore(self.POINTS)
        reference = DesignSpaceExplorer(models).explore(self.POINTS)
        assert custom == reference
        assert tuned == reference
