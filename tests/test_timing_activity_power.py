"""Tests for the activity-driven power estimator."""

import pytest

from repro.nn.workloads import random_int_matrices
from repro.sim.stats import SimulationStats
from repro.sim.systolic_sim import CycleAccurateSystolicArray
from repro.timing.activity_power import ActivityBasedPowerEstimator
from repro.timing.power_model import PowerModel


def simulate(rows, cols, k, t_rows, configurable=True, seed=0):
    array = CycleAccurateSystolicArray(rows, cols, collapse_depth=k, configurable=configurable)
    a_tile, b_tile = random_int_matrices(t_rows, rows, cols, seed=seed)
    return array.simulate_tile(a_tile, b_tile).stats


class TestEstimates:
    def test_energy_components_positive(self):
        stats = simulate(8, 8, 2, 16)
        estimator = ActivityBasedPowerEstimator(8, 8, 2)
        estimate = estimator.estimate(stats, clock_period_ns=0.6)
        assert estimate.datapath_pj > 0
        assert estimate.register_clock_pj > 0
        assert estimate.sram_pj > 0
        assert estimate.total_pj > estimate.core_pj

    def test_power_positive_and_bounded(self):
        stats = simulate(8, 8, 4, 16)
        estimator = ActivityBasedPowerEstimator(8, 8, 4)
        power = estimator.average_power_mw(stats, clock_period_ns=0.714)
        # 64 PEs at a few mW each.
        assert 10.0 < power < 1000.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ActivityBasedPowerEstimator(0, 8, 1)
        with pytest.raises(ValueError):
            ActivityBasedPowerEstimator(8, 8, 0)
        estimator = ActivityBasedPowerEstimator(8, 8, 1)
        with pytest.raises(ValueError):
            estimator.estimate(SimulationStats(), clock_period_ns=0.0)

    def test_average_power_requires_positive_time(self):
        estimator = ActivityBasedPowerEstimator(8, 8, 1)
        estimate = estimator.estimate(simulate(8, 8, 1, 4), clock_period_ns=0.5)
        with pytest.raises(ValueError):
            estimate.average_power_mw(0.0)


class TestCrossValidationAgainstAnalyticalModel:
    def test_long_tile_matches_analytical_power_within_tolerance(self):
        """For a long, well-utilised tile the activity-based estimate approaches
        the analytical (always-busy) power model."""
        rows = cols = 16
        k = 2
        stats = simulate(rows, cols, k, t_rows=512)
        period_ns = 1.0 / 1.7
        measured = ActivityBasedPowerEstimator(rows, cols, k).average_power_mw(stats, period_ns)
        analytical = PowerModel().arrayflex_array_power_mw(rows, cols, k, frequency_ghz=1.7)
        assert measured == pytest.approx(analytical, rel=0.30)

    def test_short_tile_draws_less_power_than_analytical(self):
        """Fill/drain bubbles of short tiles reduce effective datapath activity."""
        rows = cols = 16
        stats = simulate(rows, cols, 1, t_rows=4)
        period_ns = 1.0 / 1.8
        measured = ActivityBasedPowerEstimator(rows, cols, 1).average_power_mw(stats, period_ns)
        analytical = PowerModel().arrayflex_array_power_mw(rows, cols, 1, frequency_ghz=1.8)
        assert measured < analytical

    def test_deep_collapse_reduces_measured_power(self):
        """The gating measured by the simulator translates into lower power."""
        rows = cols = 16
        t_rows = 256
        powers = {}
        for k, freq in ((1, 1.8), (4, 1.4)):
            stats = simulate(rows, cols, k, t_rows=t_rows)
            powers[k] = ActivityBasedPowerEstimator(rows, cols, k).average_power_mw(
                stats, 1.0 / freq
            )
        assert powers[4] < powers[1]

    def test_conventional_vs_arrayflex_datapath_overhead(self):
        """Per-MAC, the conventional PE spends less energy (no CSA/muxes) --
        the overhead the paper accepts in exchange for configurability."""
        rows = cols = 8
        stats_conv = simulate(rows, cols, 1, 64, configurable=False)
        stats_af = simulate(rows, cols, 1, 64, configurable=True)
        conv = ActivityBasedPowerEstimator(rows, cols, 1, configurable=False).estimate(
            stats_conv, 0.5
        )
        arrayflex = ActivityBasedPowerEstimator(rows, cols, 1, configurable=True).estimate(
            stats_af, 0.5556
        )
        assert arrayflex.datapath_pj > conv.datapath_pj

    def test_memory_energy_excluded_from_core(self):
        stats = simulate(8, 8, 2, 32)
        estimate = ActivityBasedPowerEstimator(8, 8, 2).estimate(stats, 0.6)
        elapsed = stats.total_cycles * 0.6
        assert estimate.average_power_mw(elapsed, include_memories=True) > estimate.average_power_mw(
            elapsed, include_memories=False
        )
