"""Tests for the public accelerator facade and the comparison report."""

import numpy as np
import pytest

from repro import ArrayFlexAccelerator, ArrayFlexConfig, GemmShape
from repro.nn.models import resnet34
from repro.nn.workloads import random_int_matrices


@pytest.fixture(scope="module")
def accel():
    return ArrayFlexAccelerator(rows=128, cols=128)


@pytest.fixture(scope="module")
def small_accel():
    return ArrayFlexAccelerator(rows=8, cols=8)


class TestConstruction:
    def test_default_instance(self, accel):
        assert accel.config.rows == 128
        assert accel.config.sorted_depths() == (1, 2, 4)

    def test_explicit_config_object(self):
        config = ArrayFlexConfig(rows=64, cols=64, supported_depths=(1, 2))
        accel = ArrayFlexAccelerator(config=config)
        assert accel.config is config

    def test_invalid_geometry_propagates(self):
        with pytest.raises(ValueError):
            ArrayFlexAccelerator(rows=100, cols=100, supported_depths=(1, 3))


class TestAnalyticalRuns:
    def test_decide_accepts_tuple(self, accel):
        decision = accel.decide((512, 4608, 49))
        assert decision.collapse_depth == 4

    def test_run_gemm_returns_layer_schedule(self, accel):
        layer = accel.run_gemm(GemmShape(m=256, n=2304, t=196))
        assert layer.cycles > 0
        assert layer.power_mw > 0

    def test_run_model_and_baseline(self, accel):
        model = resnet34()
        arrayflex = accel.run_model(model)
        conventional = accel.run_model_conventional(model)
        assert arrayflex.accelerator == "ArrayFlex"
        assert conventional.accelerator == "Conventional"
        assert len(arrayflex.layers) == len(conventional.layers)

    def test_comparison_report_fields(self, accel):
        report = accel.compare_with_conventional(resnet34())
        summary = report.summary()
        assert set(summary) == {
            "latency_saving",
            "power_saving",
            "edp_gain",
            "conventional_time_ms",
            "arrayflex_time_ms",
            "conventional_power_mw",
            "arrayflex_power_mw",
        }
        assert report.model_name == "ResNet-34"

    def test_headline_bands(self, accel):
        """The paper's headline claims hold for ResNet-34 on 128x128 arrays."""
        report = accel.compare_with_conventional(resnet34())
        assert 0.05 < report.latency_saving < 0.20
        assert 0.08 < report.power_saving < 0.20
        assert 1.25 < report.edp_gain < 1.95

    def test_frequency_table(self, accel):
        table = accel.frequency_table()
        assert table["conventional"] == pytest.approx(2.0)
        assert table["arrayflex_k4"] == pytest.approx(1.4)

    def test_area_report(self, accel):
        report = accel.area_report()
        assert report["arrayflex_pe_um2"] > report["conventional_pe_um2"]
        assert 0.10 < report["pe_area_overhead"] < 0.22
        assert report["arrayflex_array_mm2"] > report["conventional_array_mm2"]


class TestFunctionalExecution:
    def test_execute_gemm_bit_exact(self, small_accel):
        a_matrix, b_matrix = random_int_matrices(6, 12, 10, seed=1)
        result = small_accel.execute_gemm(a_matrix, b_matrix)
        assert np.array_equal(result.output, a_matrix @ b_matrix)

    def test_execute_gemm_explicit_depth(self, small_accel):
        a_matrix, b_matrix = random_int_matrices(4, 8, 8, seed=2)
        result = small_accel.execute_gemm(a_matrix, b_matrix, collapse_depth=2)
        assert result.collapse_depth == 2
        assert np.array_equal(result.output, a_matrix @ b_matrix)

    def test_execute_gemm_auto_depth_matches_decision(self, small_accel):
        a_matrix, b_matrix = random_int_matrices(4, 8, 8, seed=3)
        result = small_accel.execute_gemm(a_matrix, b_matrix)
        decision = small_accel.decide((8, 8, 4))
        assert result.collapse_depth == decision.collapse_depth

    def test_functional_cycles_match_analytical_schedule(self, small_accel):
        """The cycle-accurate path and the analytical path agree on cycles."""
        a_matrix, b_matrix = random_int_matrices(6, 16, 12, seed=4)
        functional = small_accel.execute_gemm(a_matrix, b_matrix, collapse_depth=2)
        gemm = GemmShape(m=12, n=16, t=6)
        analytical = small_accel.scheduler.latency.total_cycles(gemm, 2)
        assert functional.total_cycles == analytical


class TestCacheDir:
    def test_cache_dir_implies_batched_backend_with_store(self, tmp_path):
        from repro.backends import BatchedCachedBackend

        accel = ArrayFlexAccelerator(rows=64, cols=64, cache_dir=str(tmp_path))
        assert isinstance(accel.backend, BatchedCachedBackend)
        assert accel.backend.store is not None
        accel.run_gemm((64, 64, 64))
        assert list(tmp_path.glob("decisions-*.npy"))

    def test_cache_dir_rejects_non_batched_backend(self, tmp_path):
        with pytest.raises(ValueError):
            ArrayFlexAccelerator(backend="analytical", cache_dir=str(tmp_path))
