"""Tests for pipeline registers with transparency and clock gating."""

import pytest

from repro.arch.registers import PipelineRegister


class TestOpaqueBehaviour:
    def test_output_is_previous_cycle_value(self):
        reg = PipelineRegister(8, "r")
        reg.drive(5)
        assert reg.output() == 0  # not yet clocked
        reg.clock_edge()
        assert reg.output() == 5

    def test_multiple_cycles_pipeline_one_deep(self):
        reg = PipelineRegister(8, "r")
        seen = []
        for value in (1, 2, 3):
            reg.drive(value)
            seen.append(reg.output())
            reg.clock_edge()
        assert seen == [0, 1, 2]

    def test_value_wraps_to_width(self):
        reg = PipelineRegister(8, "r")
        reg.drive(200)
        reg.clock_edge()
        assert reg.output() == 200 - 256

    def test_clocked_cycles_counted(self):
        reg = PipelineRegister(8, "r")
        for _ in range(5):
            reg.drive(1)
            reg.clock_edge()
        assert reg.activity.clocked_cycles == 5
        assert reg.activity.gated_cycles == 0

    def test_data_toggles_counted_only_on_change(self):
        reg = PipelineRegister(8, "r")
        for value in (1, 1, 2, 2, 3):
            reg.drive(value)
            reg.clock_edge()
        assert reg.activity.data_toggles == 3  # 0->1, 1->2, 2->3


class TestTransparentBehaviour:
    def test_output_follows_input_combinationally(self):
        reg = PipelineRegister(8, "r", transparent=True)
        reg.drive(42)
        assert reg.output() == 42

    def test_clock_edge_is_gated(self):
        reg = PipelineRegister(8, "r", transparent=True)
        reg.drive(42)
        reg.clock_edge()
        assert reg.activity.gated_cycles == 1
        assert reg.activity.clocked_cycles == 0
        # The flip-flops never captured the value.
        assert reg.stored_value == 0

    def test_reconfiguration(self):
        reg = PipelineRegister(8, "r")
        reg.set_transparent(True)
        reg.drive(7)
        assert reg.output() == 7
        reg.set_transparent(False)
        assert reg.output() == 0

    def test_gating_ratio(self):
        reg = PipelineRegister(8, "r", transparent=True)
        for _ in range(4):
            reg.drive(0)
            reg.clock_edge()
        reg.set_transparent(False)
        for _ in range(4):
            reg.drive(0)
            reg.clock_edge()
        assert reg.activity.gating_ratio() == pytest.approx(0.5)

    def test_gating_ratio_empty(self):
        assert PipelineRegister(8, "r").activity.gating_ratio() == 0.0


class TestMisc:
    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PipelineRegister(0, "bad")

    def test_reset(self):
        reg = PipelineRegister(8, "r")
        reg.drive(9)
        reg.clock_edge()
        reg.reset()
        assert reg.output() == 0

    def test_reset_to_value_wraps(self):
        reg = PipelineRegister(8, "r")
        reg.reset(300)
        assert reg.stored_value == 300 - 256

    def test_driven_value_probe(self):
        reg = PipelineRegister(8, "r")
        reg.drive(33)
        assert reg.driven_value == 33
