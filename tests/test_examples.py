"""Smoke tests: every shipped example runs to completion.

The examples double as executable documentation; breaking one is breaking
the public API story, so they are exercised here (with output captured).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=[e.stem for e in EXAMPLES])
def test_example_runs(example, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(example)])
    runpy.run_path(str(example), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{example.name} produced no output"


def test_expected_examples_present():
    names = {e.stem for e in EXAMPLES}
    assert {
        "quickstart",
        "resnet34_layer_study",
        "convnext_per_layer",
        "cnn_suite_comparison",
        "functional_simulation",
    } <= names
