"""Tests for the workload registry, suites and the batch-scaling adapter."""

import pickle

import pytest

from repro.backends import AnalyticalBackend
from repro.core.config import ArrayFlexConfig
from repro.core.scheduler import resolve_workload
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import resnet34
from repro.workloads import (
    GemmWorkload,
    UnknownWorkloadError,
    Workload,
    batched_workload,
    get_suite,
    get_workload,
    list_suites,
    list_workloads,
    normalise_name,
    register_workload,
    workload_entry,
)


class TestRegistryLookup:
    def test_builtin_suites_present(self):
        suites = list_suites()
        assert set(suites) == {"cnn", "cnn_extended", "transformers"}
        assert suites["cnn"] == ["convnext_tiny", "mobilenet_v1", "resnet34"]
        assert suites["transformers"] == ["bert_base", "gpt2_decode", "vit_b16"]

    def test_list_workloads_filters_by_suite(self):
        assert list_workloads("cnn_extended") == ["resnet50", "vgg16"]
        assert set(list_workloads()) >= {"resnet34", "bert_base", "vgg16"}

    def test_get_workload_builds_fresh_objects(self):
        model = get_workload("resnet34")
        assert model.name == "ResNet-34"
        assert model.gemms() == resnet34().gemms()

    def test_aliases_and_case_insensitivity(self):
        assert get_workload("ResNet-34").name == "ResNet-34"
        assert get_workload("BERT-Base").name == "BERT-Base"
        assert get_workload("VIT_B16").name == "ViT-B/16"
        assert get_workload("ViT-B/16").name == "ViT-B/16"  # via the alias
        assert normalise_name("ViT-B/16") == "vit_b_16"

    def test_unknown_name_lists_available(self):
        with pytest.raises(UnknownWorkloadError, match="resnet34"):
            get_workload("alexnet")

    def test_unknown_suite_rejected(self):
        with pytest.raises(UnknownWorkloadError):
            get_suite("rnns")

    def test_factory_kwargs_pass_through(self):
        wide = get_workload("bert_base", seq_len=384)
        assert wide.gemms()[0].t == 384

    def test_entry_metadata(self):
        entry = workload_entry("gpt2_decode")
        assert entry.suite == "transformers"
        assert "decode" in entry.description

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload("resnet34", resnet34)

    def test_replace_allows_shadowing(self):
        from repro.workloads import registry as registry_module

        try:
            register_workload(
                "resnet34_test_shadow", resnet34, suite="test", description="a"
            )
            register_workload(
                "resnet34_test_shadow", resnet34, suite="test", description="b",
                replace=True,
            )
            assert workload_entry("resnet34_test_shadow").description == "b"
        finally:
            # The registry is module-global; leave no trace for other tests.
            registry_module._REGISTRY.pop("resnet34_test_shadow", None)


class TestBatchScaling:
    def test_batch_one_is_identity(self):
        model = resnet34()
        assert batched_workload(model, 1) is model

    def test_batch_scales_every_t_linearly(self):
        base = get_workload("resnet34")
        scaled = batched_workload(base, 8)
        assert scaled.name == "ResNet-34@bs8"
        for original, batched in zip(base.gemms(), scaled.gemms()):
            assert (batched.m, batched.n) == (original.m, original.n)
            assert batched.t == 8 * original.t

    def test_inline_suffix_matches_batch_argument(self):
        inline = get_workload("gpt2_decode@bs4")
        explicit = get_workload("gpt2_decode", batch=4)
        assert inline.name == explicit.name == "GPT-2-decode@bs4"
        assert inline.gemms() == explicit.gemms()

    def test_inline_suffix_conflicts_with_batch_argument(self):
        with pytest.raises(ValueError, match="not both"):
            get_workload("gpt2_decode@bs4", batch=2)

    def test_malformed_suffix_rejected(self):
        with pytest.raises(UnknownWorkloadError):
            get_workload("gpt2_decode@bsmany")

    def test_suffix_is_case_insensitive_like_names(self):
        assert get_workload("GPT2_DECODE@BS4").name == "GPT-2-decode@bs4"

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            batched_workload(resnet34(), 0)

    def test_batched_workload_is_picklable(self):
        scaled = get_workload("bert_base", batch=2)
        clone = pickle.loads(pickle.dumps(scaled))
        assert clone.gemms() == scaled.gemms()


class TestGemmWorkload:
    def test_protocol_satisfied(self):
        workload = GemmWorkload(name="w", shapes=(GemmShape(m=8, n=8, t=8, name="g"),))
        assert isinstance(workload, Workload)
        assert isinstance(resnet34(), Workload)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GemmWorkload(name="empty")

    def test_counters(self):
        workload = GemmWorkload(
            name="w", shapes=(GemmShape(m=2, n=3, t=4, name="g"),) * 2
        )
        assert workload.num_layers == 2
        assert workload.total_macs == 2 * (2 * 3 * 4)


class TestResolveWorkload:
    def test_string_resolves_through_registry(self):
        gemms, name = resolve_workload("resnet34")
        assert name == "ResNet-34"
        assert gemms == resnet34().gemms()

    def test_string_with_batch_suffix(self):
        gemms, name = resolve_workload("resnet34@bs2")
        assert name == "ResNet-34@bs2"
        assert gemms[0].t == 2 * resnet34().gemms()[0].t

    def test_workload_object_resolves(self):
        workload = get_workload("bert_base")
        gemms, name = resolve_workload(workload)
        assert name == "BERT-Base"
        assert len(gemms) == 72

    def test_backend_accepts_registry_name(self):
        config = ArrayFlexConfig(rows=64, cols=64)
        backend = AnalyticalBackend()
        by_name = backend.schedule_model("resnet34", config)
        by_object = backend.schedule_model(resnet34(), config)
        assert by_name.layers == by_object.layers
        assert by_name.model_name == "ResNet-34"

class TestReplaceAliasHygiene:
    def test_replace_retires_old_aliases(self):
        from repro.nn.models import resnet34 as factory
        from repro.workloads import registry as registry_module

        try:
            register_workload(
                "shadow_wl", factory, suite="test", aliases=("Shadow-Old",)
            )
            register_workload(
                "shadow_wl", factory, suite="test", aliases=("Shadow-New",),
                replace=True,
            )
            assert get_workload("Shadow-New").name == "ResNet-34"
            with pytest.raises(UnknownWorkloadError):
                get_workload("Shadow-Old")
        finally:
            registry_module._REGISTRY.pop("shadow_wl", None)
            registry_module._ALIASES.pop("shadow_old", None)
            registry_module._ALIASES.pop("shadow_new", None)


class TestSuiteProtocolMinimalism:
    def test_suite_counts_work_with_minimal_workloads(self):
        """total_layers must only rely on the advertised name+gemms contract."""
        from repro.workloads import WorkloadSuite

        class Minimal:
            name = "minimal"

            def gemms(self):
                return [GemmShape(m=4, n=4, t=4, name="g")] * 3

        suite = WorkloadSuite(name="s", models=(Minimal(),))
        assert suite.total_layers == 3
        assert suite.gemms_by_model()["minimal"][0].m == 4


class TestEdgeCaseHardening:
    def test_replace_can_shadow_a_builtin_by_its_alias(self):
        """Shadowing by display name must actually take effect."""
        from repro.workloads import registry as registry_module

        original_alias_target = registry_module._ALIASES.get("resnet_34")
        try:
            marker = GemmShape(m=1, n=1, t=1, name="shadow")
            register_workload(
                "ResNet-34",
                lambda: GemmWorkload(name="Shadow", shapes=(marker,)),
                suite="test",
                replace=True,
            )
            assert get_workload("ResNet-34").name == "Shadow"
        finally:
            registry_module._REGISTRY.pop("resnet_34", None)
            if original_alias_target is not None:
                registry_module._ALIASES["resnet_34"] = original_alias_target

    def test_empty_lowering_rejected_like_empty_lists(self):
        class Hollow:
            name = "hollow"

            def gemms(self):
                return []

        with pytest.raises(ValueError, match="empty"):
            resolve_workload(Hollow())

    def test_names_with_batch_marker_rejected_at_registration(self):
        with pytest.raises(ValueError, match="reserved"):
            register_workload("x@bs_opt", resnet34, suite="test")

    def test_explicit_empty_experiment_workloads_not_replaced(self):
        from repro.eval.experiments import TransformerSuiteExperiment

        assert TransformerSuiteExperiment(workloads=[]).workloads == []
