"""Tests for the edge memories (SRAM banks and output accumulators)."""

import numpy as np
import pytest

from repro.arch.memory import AccumulatorBank, SRAMBank, build_edge_memories


class TestSRAMBank:
    def test_write_then_read(self):
        bank = SRAMBank("b", depth=16, word_bits=32)
        bank.write(3, 42)
        assert bank.read(3) == 42

    def test_access_counters(self):
        bank = SRAMBank("b", depth=16, word_bits=32)
        bank.write(0, 1)
        bank.read(0)
        bank.read(0)
        assert bank.writes == 1
        assert bank.reads == 2
        assert bank.total_accesses == 3

    def test_access_bits(self):
        bank = SRAMBank("b", depth=16, word_bits=32)
        bank.write(0, 1)
        bank.read(0)
        assert bank.access_bits() == 64

    def test_block_write(self):
        bank = SRAMBank("b", depth=16, word_bits=32)
        bank.write_block(4, np.arange(5))
        assert bank.read(8) == 4
        assert bank.writes == 5

    def test_out_of_range_address(self):
        bank = SRAMBank("b", depth=4, word_bits=8)
        with pytest.raises(IndexError):
            bank.read(4)
        with pytest.raises(IndexError):
            bank.write(-1, 0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SRAMBank("b", depth=0, word_bits=8)


class TestAccumulatorBank:
    def test_single_accumulation(self):
        acc = AccumulatorBank(cols=4, t_rows=3)
        acc.accumulate(1, 2, 10)
        acc.accumulate(1, 2, 5)
        assert acc.read_result()[1, 2] == 15

    def test_block_accumulation_across_tiles(self):
        """Partial sums of tiles along the N dimension add up (Fig. 1c)."""
        acc = AccumulatorBank(cols=4, t_rows=2)
        acc.accumulate_block(np.ones((2, 4), dtype=np.int64))
        acc.accumulate_block(2 * np.ones((2, 4), dtype=np.int64))
        assert np.all(acc.read_result() == 3)

    def test_block_with_column_offset(self):
        acc = AccumulatorBank(cols=6, t_rows=2)
        acc.accumulate_block(np.ones((2, 2), dtype=np.int64), col_offset=4)
        result = acc.read_result()
        assert np.all(result[:, 4:] == 1)
        assert np.all(result[:, :4] == 0)

    def test_block_shape_mismatch(self):
        acc = AccumulatorBank(cols=4, t_rows=2)
        with pytest.raises(ValueError):
            acc.accumulate_block(np.ones((3, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            acc.accumulate_block(np.ones((2, 3), dtype=np.int64), col_offset=2)

    def test_index_bounds(self):
        acc = AccumulatorBank(cols=4, t_rows=2)
        with pytest.raises(IndexError):
            acc.accumulate(2, 0, 1)
        with pytest.raises(IndexError):
            acc.accumulate(0, 4, 1)

    def test_reset(self):
        acc = AccumulatorBank(cols=2, t_rows=2)
        acc.accumulate(0, 0, 5)
        acc.reset()
        assert np.all(acc.read_result() == 0)

    def test_read_result_returns_copy(self):
        acc = AccumulatorBank(cols=2, t_rows=2)
        result = acc.read_result()
        result[0, 0] = 99
        assert acc.read_result()[0, 0] == 0


class TestBuildEdgeMemories:
    def test_complement_sizes(self):
        west, north, south = build_edge_memories(rows=8, cols=4, t_rows=16)
        assert len(west) == 8
        assert len(north) == 4
        assert south.cols == 4
        assert south.t_rows == 16

    def test_bank_naming(self):
        west, north, _ = build_edge_memories(rows=2, cols=2, t_rows=4)
        assert west[0].name == "west[0]"
        assert north[1].name == "north[1]"
