"""Tests for the CNN layer descriptors."""

import pytest

from repro.nn.layers import Conv2dLayer, LayerKind, LinearLayer


def make_conv(**overrides):
    defaults = dict(
        name="conv",
        in_channels=64,
        out_channels=128,
        kernel_size=3,
        stride=1,
        padding=1,
        input_height=56,
        input_width=56,
    )
    defaults.update(overrides)
    return Conv2dLayer(**defaults)


class TestConvGeometry:
    def test_same_padding_preserves_resolution(self):
        layer = make_conv()
        assert layer.output_height == 56
        assert layer.output_width == 56

    def test_stride_two_halves_resolution(self):
        layer = make_conv(stride=2)
        assert layer.output_height == 28

    def test_valid_padding(self):
        layer = make_conv(padding=0, kernel_size=7, input_height=112, input_width=112)
        assert layer.output_height == 106

    def test_stem_conv_like_resnet(self):
        layer = make_conv(
            in_channels=3, out_channels=64, kernel_size=7, stride=2, padding=3,
            input_height=224, input_width=224,
        )
        assert layer.output_height == 112

    def test_output_pixels(self):
        assert make_conv(stride=2).output_pixels == 28 * 28

    def test_non_square_input(self):
        layer = make_conv(input_height=32, input_width=64)
        assert layer.output_pixels == 32 * 64


class TestConvKinds:
    def test_standard_conv(self):
        assert make_conv().kind is LayerKind.CONV

    def test_pointwise(self):
        assert make_conv(kernel_size=1, padding=0).kind is LayerKind.POINTWISE_CONV

    def test_depthwise(self):
        layer = make_conv(in_channels=64, out_channels=64, groups=64)
        assert layer.kind is LayerKind.DEPTHWISE_CONV

    def test_grouped_but_not_depthwise(self):
        layer = make_conv(in_channels=64, out_channels=128, groups=2)
        assert layer.kind is LayerKind.CONV


class TestConvCosts:
    def test_weight_count(self):
        assert make_conv().weight_count == 128 * 64 * 9

    def test_depthwise_weight_count(self):
        layer = make_conv(in_channels=64, out_channels=64, groups=64)
        assert layer.weight_count == 64 * 9

    def test_macs(self):
        layer = make_conv()
        assert layer.macs == layer.weight_count * 56 * 56

    def test_scaled_input(self):
        layer = make_conv().scaled_input(28, 28)
        assert layer.output_pixels == 28 * 28
        assert layer.in_channels == 64


class TestValidation:
    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            make_conv(padding=-1)

    def test_zero_channels_rejected(self):
        with pytest.raises(ValueError):
            make_conv(in_channels=0)

    def test_groups_must_divide_channels(self):
        with pytest.raises(ValueError):
            make_conv(groups=3)


class TestLinearLayer:
    def test_kind(self):
        assert LinearLayer("fc", 512, 1000).kind is LayerKind.LINEAR

    def test_weight_count_and_macs(self):
        layer = LinearLayer("fc", 512, 1000, tokens=4)
        assert layer.weight_count == 512000
        assert layer.macs == 512000 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearLayer("fc", 0, 10)
