"""Cross-layer tests of the observability pillars.

Exercises what the unit tests cannot: span context shipped across the
scheduling service's *process*-pool executor and re-parented on return,
the daemon's X-Request-Id round trip (response header, trace identity,
JSON log records), the >= 3-level span hierarchy one HTTP schedule call
produces, and the ``/metrics`` endpoint reading everything from the one
unified registry — same counter values through the legacy JSON shape and
the Prometheus text exposition.
"""

import io
import json
import logging
import time
from http.client import HTTPConnection

import pytest

from repro.obs.logs import configure_logging
from repro.obs.trace import Tracer, get_tracer, set_tracer
from repro.serve import DaemonClient, SchedulerDaemon, SchedulingService
from repro.serve.protocol import request_from_wire

GEMMS = [[64, 576, 3136, "conv_a"]]
WIRE_CONFIG = {"rows": 128, "cols": 128, "depths": [1, 2, 4]}


def wire_request(**overrides):
    payload = {"v": 1, "model": GEMMS, "config": dict(WIRE_CONFIG)}
    payload.update(overrides)
    return payload


@pytest.fixture()
def tracer():
    """A fresh enabled tracer installed as the process global."""
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@pytest.fixture()
def log_stream():
    """JSON-lines logging at DEBUG into a buffer (restored afterwards)."""
    stream = io.StringIO()
    logger = configure_logging(level="DEBUG", json_lines=True, stream=stream)
    try:
        yield stream
    finally:
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)
        logger.propagate = True


@pytest.fixture()
def daemon():
    daemon = SchedulerDaemon(port=0, max_inflight=32)
    daemon.start()
    try:
        yield daemon
    finally:
        assert daemon.drain(timeout=30)


def _span_depth(span, by_id):
    depth = 1
    while span.parent_id is not None and span.parent_id in by_id:
        span = by_id[span.parent_id]
        depth += 1
    return depth


def _wait_for_span(tracer, trace_id, name="daemon.request", timeout=5.0):
    """Poll until the handler thread has recorded ``name`` for ``trace_id``.

    The daemon sends the response body from inside the ``daemon.request``
    span, so a client can return before the server thread exits the span's
    ``with`` block and records it.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = [s for s in tracer.spans() if s.trace_id == trace_id]
        if any(s.name == name for s in spans):
            return spans
        time.sleep(0.005)
    raise AssertionError(f"span {name!r} for trace {trace_id!r} never recorded")


# ---------------------------------------------------------------------- #
# Span propagation across the process-pool executor
# ---------------------------------------------------------------------- #
def test_process_pool_spans_reparent_under_the_request(tracer):
    with SchedulingService(executor="process", max_workers=2) as service:
        with tracer.span("daemon.request", trace_id="req-pool") as request:
            response = service.submit(request_from_wire(wire_request(totals_only=True)))
            assert response.ok
    spans = [span for span in tracer.spans() if span.trace_id == "req-pool"]
    by_id = {span.span_id: span for span in spans}
    assert len(by_id) == len(spans), "span ids must be unique after merging"

    worker_spans = [span for span in spans if span.pid != request.pid]
    assert worker_spans, "worker-side spans must come back with the result"
    assert all(span.trace_id == "req-pool" for span in worker_spans)
    # Every worker span chains up to the submitting request span.
    roots = {
        span.parent_id for span in worker_spans if span.parent_id not in by_id
    }
    assert roots <= {request.span_id} or all(
        _span_depth(span, by_id) >= 2 for span in worker_spans
    )
    totals = next(s for s in spans if s.name == "backend.model_totals")
    assert totals.parent_id == request.span_id


def test_thread_pool_spans_nest_under_the_request(tracer):
    with SchedulingService(executor="thread", max_workers=2) as service:
        with tracer.span("daemon.request", trace_id="req-thread"):
            assert service.submit(request_from_wire(wire_request())).ok
    spans = [span for span in tracer.spans() if span.trace_id == "req-thread"]
    by_id = {span.span_id: span for span in spans}
    assert max(_span_depth(span, by_id) for span in spans) >= 3


# ---------------------------------------------------------------------- #
# X-Request-Id through the HTTP daemon
# ---------------------------------------------------------------------- #
def test_request_id_round_trip_into_logs_and_spans(tracer, log_stream, daemon):
    client = DaemonClient(port=daemon.address[1], request_id="req-e2e-77")
    assert client.schedule(wire_request())["status"] == "ok"
    assert client.last_request_id == "req-e2e-77"

    # The request ID is the trace identity of every span the call opened.
    spans = _wait_for_span(tracer, "req-e2e-77")
    names = {span.name for span in spans}
    assert "daemon.request" in names and "backend.schedule_model" in names
    by_id = {span.span_id: span for span in spans}
    assert max(_span_depth(span, by_id) for span in spans) >= 3

    # ... and the correlation ID of the structured access-log records.
    records = [json.loads(line) for line in log_stream.getvalue().splitlines()]
    access = [r for r in records if r["logger"] == "repro.serve.access"]
    assert access, "DEBUG logging must produce access-log records"
    (record,) = [r for r in access if r.get("path") == "/v1/schedule"]
    assert record["request_id"] == "req-e2e-77"
    assert record["method"] == "POST"
    assert record["status"] == 200
    assert record["duration_ms"] > 0


def test_daemon_assigns_request_id_when_absent(daemon):
    client = DaemonClient(port=daemon.address[1])
    client.healthz()
    first = client.last_request_id
    client.healthz()
    assert first and client.last_request_id and first != client.last_request_id


def test_chrome_export_of_a_daemon_request(tracer, daemon, tmp_path):
    client = DaemonClient(port=daemon.address[1], request_id="req-chrome")
    assert client.schedule(wire_request())["status"] == "ok"
    _wait_for_span(tracer, "req-chrome")
    path = tmp_path / "trace.json"
    count = tracer.export_chrome(path)
    events = json.loads(path.read_text())["traceEvents"]
    assert count == len(events) >= 3
    request_events = [
        e for e in events if e["args"].get("trace_id") == "req-chrome"
    ]
    parents = {e["args"].get("parent_id") for e in request_events}
    ids = {e["args"]["span_id"] for e in request_events}
    assert (parents - {None}) <= ids, "exported hierarchy must be self-contained"


# ---------------------------------------------------------------------- #
# /metrics: one registry behind both representations
# ---------------------------------------------------------------------- #
def test_metrics_json_and_prometheus_read_the_same_registry(tmp_path):
    daemon = SchedulerDaemon(port=0, max_inflight=32, cache_dir=tmp_path)
    daemon.start()
    try:
        client = DaemonClient(port=daemon.address[1])
        assert client.schedule(wire_request())["status"] == "ok"
        assert client.schedule(wire_request())["status"] == "ok"

        payload = client.metrics()
        # Legacy JSON fields, rebuilt from the unified registry.
        assert payload["daemon"]["requests"] == {"/v1/schedule": 2}
        assert payload["daemon"]["outcomes"] == {"/v1/schedule:ok": 2}
        assert payload["service"]["requests"] == 2
        assert payload["service"]["deduplicated"] == 1
        histogram = payload["daemon"]["latency_ms_by_backend"]["batched"]
        assert histogram["count"] == 2
        assert histogram["buckets_le_ms"]["+Inf"] == 2

        # The same numbers through the registry's own reads...
        (requests_ctr,) = daemon.registry.family("daemon_requests_total")
        assert requests_ctr.value == 2
        (service_ctr,) = daemon.registry.family("service_requests_total")
        assert service_ctr.value == 2
        (dedup_ctr,) = daemon.registry.family("service_deduplicated_total")
        assert dedup_ctr.value == 1
        store_loads = daemon.registry.family("store_shard_loads_total")
        assert store_loads and store_loads[0].value == payload["store"]["shard_loads"]

        # ... and through the Prometheus text exposition.
        connection = HTTPConnection(*daemon.address)
        connection.request("GET", "/metrics", headers={"Accept": "text/plain"})
        response = connection.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        text = response.read().decode()
        connection.close()
        assert 'daemon_requests_total{endpoint="/v1/schedule"} 2' in text
        assert "service_requests_total 2" in text
        assert "service_deduplicated_total 1" in text
        assert 'daemon_latency_ms_count{backend="batched"} 2' in text
        assert "store_shard_loads_total" in text

        # Content negotiation: the default stays JSON.
        assert client.metrics()["v"] == payload["v"]
    finally:
        assert daemon.drain(timeout=30)
