"""Shared fixtures of the test suite."""

import pytest

from repro.core.config import ArrayFlexConfig
from repro.timing.technology import TechnologyModel


@pytest.fixture(scope="session")
def tech():
    """The default calibrated 28 nm technology model."""
    return TechnologyModel.default_28nm()


@pytest.fixture(scope="session")
def small_config():
    """A small 16x16 ArrayFlex configuration, cheap enough for cycle simulation."""
    return ArrayFlexConfig(rows=16, cols=16, supported_depths=(1, 2, 4))


@pytest.fixture(scope="session")
def paper_config_128():
    """The paper's main 128x128 configuration."""
    return ArrayFlexConfig.paper_128x128()


@pytest.fixture(scope="session")
def paper_config_256():
    """The paper's large 256x256 configuration."""
    return ArrayFlexConfig.paper_256x256()
