"""Tests for the simulation engine, traces and statistics containers."""

import numpy as np
import pytest

from repro.nn.workloads import random_int_matrices
from repro.sim.engine import SimulationEngine, SimulationPhase
from repro.sim.stats import SimulationStats
from repro.sim.trace import CycleTrace, TraceEvent


class TestSimulationStats:
    def test_defaults(self):
        stats = SimulationStats()
        assert stats.total_cycles == 0
        assert stats.pe_utilization == 0.0
        assert stats.gated_register_fraction == 0.0

    def test_merge_accumulates(self):
        a = SimulationStats(weight_load_cycles=5, compute_cycles=10, mac_operations=100)
        b = SimulationStats(weight_load_cycles=3, compute_cycles=7, mac_operations=50)
        a.merge(b)
        assert a.weight_load_cycles == 8
        assert a.compute_cycles == 17
        assert a.mac_operations == 150

    def test_merge_extra_dict(self):
        a = SimulationStats(extra={"x": 1.0})
        b = SimulationStats(extra={"x": 2.0, "y": 3.0})
        a.merge(b)
        assert a.extra == {"x": 3.0, "y": 3.0}

    def test_merge_returns_self(self):
        a = SimulationStats()
        assert a.merge(SimulationStats()) is a

    def test_as_dict_contains_derived_metrics(self):
        stats = SimulationStats(
            weight_load_cycles=2,
            compute_cycles=8,
            active_pe_cycles=5,
            total_pe_cycles=10,
        )
        d = stats.as_dict()
        assert d["total_cycles"] == 10
        assert d["pe_utilization"] == 0.5


class TestCycleTrace:
    def test_record_and_filter(self):
        trace = CycleTrace()
        trace.record(1, "a", x=1)
        trace.record(2, "b", y=2)
        trace.record(3, "a", x=3)
        assert len(trace) == 3
        assert [e.cycle for e in trace.events("a")] == [1, 3]

    def test_disabled_trace_records_nothing(self):
        trace = CycleTrace(enabled=False)
        trace.record(1, "a")
        assert len(trace) == 0

    def test_max_events_cap(self):
        trace = CycleTrace(max_events=2)
        for i in range(5):
            trace.record(i, "a")
        assert len(trace) == 2
        assert trace.dropped_events == 3

    def test_first_and_last_cycle(self):
        trace = CycleTrace()
        trace.record(4, "a")
        trace.record(9, "a")
        assert trace.first_cycle("a") == 4
        assert trace.last_cycle("a") == 9
        assert trace.first_cycle("missing") is None

    def test_event_formatting(self):
        event = TraceEvent(cycle=3, kind="output_captured", detail={"outputs": 2})
        assert "cycle" in str(event)
        assert "output_captured" in str(event)

    def test_iteration(self):
        trace = CycleTrace()
        trace.record(0, "a")
        assert [e.kind for e in trace] == ["a"]


class TestSimulationEngine:
    @pytest.fixture()
    def engine(self):
        return SimulationEngine(rows=8, cols=8, collapse_depth=2)

    def test_run_gemm_matches_numpy(self, engine):
        a_matrix, b_matrix = random_int_matrices(6, 20, 10, seed=1)
        output, stats = engine.run_gemm(a_matrix, b_matrix)
        assert np.array_equal(output, a_matrix @ b_matrix)
        assert stats.tiles_executed == 6

    def test_phase_log_structure(self, engine):
        a_matrix, b_matrix = random_int_matrices(4, 8, 8, seed=2)
        engine.run_gemm(a_matrix, b_matrix)
        phases = [record.phase for record in engine.phase_log]
        assert phases[:3] == [
            SimulationPhase.WEIGHT_LOAD,
            SimulationPhase.STREAM,
            SimulationPhase.DRAIN,
        ]

    def test_global_cycle_accumulates_all_phases(self, engine):
        a_matrix, b_matrix = random_int_matrices(4, 8, 8, seed=3)
        _, stats = engine.run_gemm(a_matrix, b_matrix)
        assert engine.global_cycle == stats.total_cycles

    def test_phase_cycles_sum(self, engine):
        a_matrix, b_matrix = random_int_matrices(4, 16, 8, seed=4)
        _, stats = engine.run_gemm(a_matrix, b_matrix)
        total = sum(engine.phase_cycles(phase) for phase in SimulationPhase)
        assert total == stats.total_cycles

    def test_on_phase_callback(self):
        seen = []
        engine = SimulationEngine(rows=4, cols=4, on_phase=seen.append)
        a_matrix, b_matrix = random_int_matrices(3, 4, 4, seed=5)
        engine.run_gemm(a_matrix, b_matrix)
        assert len(seen) == 3
        assert seen[0].start_cycle == 0
        assert seen[1].start_cycle == seen[0].end_cycle
