"""Tests for the batch-serving front-end (`repro.serve`)."""

import threading
import time

import pytest

from repro.backends import AnalyticalBackend, BatchedCachedBackend, DecisionStore
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import mobilenet_v1, resnet34
from repro.serve import (
    ScheduleRequest,
    SchedulingService,
    TimedOutRequest,
    default_max_workers,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def config():
    return ArrayFlexConfig.paper_128x128()


@pytest.fixture(scope="module")
def reference(config):
    backend = AnalyticalBackend()
    return {
        ("ResNet-34", False): backend.schedule_model(resnet34(), config),
        ("ResNet-34", True): backend.schedule_model_conventional(resnet34(), config),
        ("MobileNetV1", False): backend.schedule_model(mobilenet_v1(), config),
    }


class TestConstruction:
    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            SchedulingService(executor="rocket")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SchedulingService(max_workers=0)

    def test_max_workers_auto_sized_from_cpu_count(self):
        assert default_max_workers("process") >= 1
        assert default_max_workers("thread") >= 1
        with SchedulingService() as service:
            assert service.max_workers == default_max_workers("thread")

    def test_cache_dir_requires_batched_backend(self, tmp_path):
        with pytest.raises(ValueError):
            SchedulingService(backend="analytical", cache_dir=tmp_path)

    def test_cache_dir_attaches_store(self, tmp_path):
        with SchedulingService(cache_dir=tmp_path) as service:
            assert isinstance(service.backend, BatchedCachedBackend)
            assert service.backend.store is not None
            assert service.backend.store.directory == tmp_path

    def test_bad_request_type_rejected(self, config):
        from repro.serve import InvalidRequest

        with SchedulingService() as service:
            with pytest.raises(InvalidRequest):
                service.submit_many([42])
            # The typed error is a ValueError, so pre-daemon call sites
            # catching broadly keep working.
            with pytest.raises(ValueError):
                service.submit_many([42])


class TestScheduleMany:
    def test_futures_in_request_order(self, config, reference):
        with SchedulingService() as service:
            futures = service.schedule_many(
                [(resnet34(), config), (mobilenet_v1(), config)]
            )
            assert futures[0].result().layers == reference[("ResNet-34", False)].layers
            assert futures[1].result().layers == reference[("MobileNetV1", False)].layers

    def test_conventional_requests(self, config, reference):
        with SchedulingService() as service:
            [schedule] = service.schedule_all(
                [ScheduleRequest(model=resnet34(), config=config, conventional=True)]
            )
        assert schedule.accelerator == "Conventional"
        assert schedule.layers == reference[("ResNet-34", True)].layers

    def test_gemm_list_requests(self, config):
        gemms = [GemmShape(m=64, n=64, t=64, name="g")]
        with SchedulingService() as service:
            [schedule] = service.schedule_all([(gemms, config)])
        assert len(schedule.layers) == 1

    def test_duplicates_share_one_future(self, config):
        with SchedulingService() as service:
            futures = service.schedule_many(
                [(resnet34(), config), (resnet34(), config), (resnet34(), config)]
            )
            assert futures[0] is futures[1] is futures[2]
            stats = service.stats()
        assert stats["requests"] == 3
        assert stats["submitted"] == 1
        assert stats["deduplicated"] == 2

    def test_dedup_spans_calls(self, config):
        with SchedulingService() as service:
            [first] = service.schedule_many([(resnet34(), config)])
            [second] = service.schedule_many([(resnet34(), config)])
            assert first is second

    def test_distinct_configs_not_deduplicated(self, config):
        other = config.with_size(64, 64)
        with SchedulingService() as service:
            futures = service.schedule_many([(resnet34(), config), (resnet34(), other)])
            assert futures[0] is not futures[1]
            assert futures[0].result().rows == 128
            assert futures[1].result().rows == 64

    def test_process_executor_matches_thread_executor(self, config, reference):
        requests = [
            ScheduleRequest(model=resnet34(), config=config),
            ScheduleRequest(model=resnet34(), config=config, conventional=True),
        ]
        with SchedulingService(executor="process", max_workers=2) as service:
            schedules = service.schedule_all(requests)
        assert schedules[0].layers == reference[("ResNet-34", False)].layers
        assert schedules[1].layers == reference[("ResNet-34", True)].layers


class TestBackendIdentityInDedupKeys:
    """Dedup keys fold in the backend's ``decision_identity()``: sampled
    results estimated under one seed/fraction are never keyed like
    another's, while the exact backends keep their historical keys."""

    @staticmethod
    def _key(service, config):
        request = ScheduleRequest(model=resnet34(), config=config)
        key, future, _ = service._submit_keyed(request)
        future.result()
        return key

    def test_exact_backends_have_empty_identity(self, config):
        with SchedulingService() as service:
            assert service._backend_identity == ()
            assert self._key(service, config)[-1] == ()

    def test_sampled_seed_and_fraction_distinguish_keys(self, config):
        from repro.backends import SampledSimBackend

        small = config.with_size(16, 16)
        keys = []
        for backend in (
            SampledSimBackend(sample_seed=0),
            SampledSimBackend(sample_seed=1),
            SampledSimBackend(sample_seed=0, sample_fraction=0.5),
        ):
            with SchedulingService(backend=backend) as service:
                keys.append(self._key(service, small))
        assert len(set(keys)) == 3
        # Same parameters produce the same key (cross-service identity).
        with SchedulingService(backend=SampledSimBackend(sample_seed=0)) as service:
            assert self._key(service, small) == keys[0]


class TestConcurrency:
    def test_concurrent_schedule_many_is_safe_and_exact(self, config, reference):
        """Many threads hammering one service agree with the reference."""
        service = SchedulingService(max_workers=8)
        errors = []
        configs = [config, config.with_size(64, 64), config.with_size(256, 256)]

        def hammer():
            try:
                for cfg in configs:
                    futures = service.schedule_many(
                        [(resnet34(), cfg), (mobilenet_v1(), cfg)]
                    )
                    for future in futures:
                        future.result(timeout=60)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert not errors
            [schedule] = service.schedule_all([(resnet34(), config)])
            assert schedule.layers == reference[("ResNet-34", False)].layers
        finally:
            service.close()

    def test_concurrent_writers_share_one_store(self, tmp_path, config):
        """Two services racing on one cache directory corrupt nothing."""
        reference = AnalyticalBackend().schedule_model(resnet34(), config)
        configs = [config, config.with_size(64, 64)]

        def run_service():
            with SchedulingService(cache_dir=tmp_path, max_workers=4) as service:
                service.schedule_all(
                    [(model(), cfg) for model in (resnet34, mobilenet_v1) for cfg in configs]
                )

        threads = [threading.Thread(target=run_service) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        warm = BatchedCachedBackend(store=DecisionStore(tmp_path))
        assert warm.schedule_model(resnet34(), config).layers == reference.layers
        assert warm.cache_info()["misses"] == 0


class TestStats:
    def test_thread_stats_include_backend_cache(self, config):
        with SchedulingService() as service:
            service.schedule_all([(resnet34(), config)])
            stats = service.stats()
        assert stats["executor"] == "thread"
        assert stats["submitted"] == 1
        assert "misses" in stats and "store_hits" in stats

    def test_process_stats_omit_backend_cache(self, config):
        with SchedulingService(executor="process", max_workers=1) as service:
            service.schedule_all([(resnet34(), config)])
            stats = service.stats()
        assert stats["executor"] == "process"
        assert "misses" not in stats

    def test_cache_dir_surfaces_disk_store_counters(self, config, tmp_path):
        """With persistence on, stats() reports the on-disk store too,
        ``disk_``-prefixed so they can't shadow the in-memory counters."""
        with SchedulingService(cache_dir=tmp_path) as service:
            service.schedule_all([(resnet34(), config)])
            stats = service.stats()
        assert stats["disk_shards"] == 1
        assert stats["disk_entries"] > 0
        assert stats["disk_total_bytes"] > 0
        assert stats["disk_corrupt_shards"] == 0
        assert "store_hits" in stats  # the in-memory counter is still there

    def test_stats_without_cache_dir_have_no_disk_counters(self, config):
        with SchedulingService() as service:
            service.schedule_all([(resnet34(), config)])
            stats = service.stats()
        assert not any(key.startswith("disk_") for key in stats)

    def test_close_flushes_buffered_store_rows(self, config, tmp_path):
        """A closed service leaves everything it derived on disk, even
        rows a buffering backend had not yet merged."""
        from repro.backends import SampledSimBackend

        backend = SampledSimBackend(store=DecisionStore(tmp_path))
        service = SchedulingService(backend=backend)
        small = ArrayFlexConfig(rows=16, cols=16)
        gemms = [GemmShape(m=20, n=33, t=6)]
        # schedule_layer alone buffers without a model-boundary flush.
        service.backend.schedule_layer(gemms[0], small)
        service.close()
        assert DecisionStore(tmp_path).stats()["entries"] > 0


class TestTotalsOnly:
    def test_totals_match_schedule_sums(self, config):
        with SchedulingService() as service:
            totals, schedule = service.schedule_all(
                [
                    ScheduleRequest(model=resnet34(), config=config, totals_only=True),
                    ScheduleRequest(model=resnet34(), config=config),
                ]
            )
        assert totals.time_ns == schedule.total_time_ns
        assert totals.energy_nj == schedule.total_energy_nj

    def test_totals_and_schedule_requests_not_conflated(self, config):
        with SchedulingService() as service:
            futures = service.schedule_many(
                [
                    ScheduleRequest(model=resnet34(), config=config, totals_only=True),
                    ScheduleRequest(model=resnet34(), config=config),
                ]
            )
            assert futures[0] is not futures[1]

    def test_totals_through_process_pool(self, config):
        request = ScheduleRequest(
            model=resnet34(), config=config, conventional=True, totals_only=True
        )
        with SchedulingService(executor="process", max_workers=1) as service:
            [totals] = service.schedule_all([request])
        reference = AnalyticalBackend().schedule_model_conventional(resnet34(), config)
        assert totals.time_ns == reference.total_time_ns
        assert totals.energy_nj == reference.total_energy_nj


class TestRegistryWorkloads:
    def test_string_request_resolves_through_registry(self, config, reference):
        with SchedulingService() as service:
            [schedule] = service.schedule_all([("resnet34", config)])
        assert schedule.model_name == "ResNet-34"
        assert schedule.layers == reference[("ResNet-34", False)].layers

    def test_string_and_object_requests_share_one_future(self, config):
        with SchedulingService() as service:
            futures = service.schedule_many(
                [("resnet34", config), (resnet34(), config)]
            )
            assert futures[0] is futures[1]

    def test_batch_suffix_is_a_distinct_identity(self, config):
        with SchedulingService() as service:
            futures = service.schedule_many(
                [("gpt2_decode", config), ("gpt2_decode@bs8", config)]
            )
            assert futures[0] is not futures[1]
            assert futures[1].result().model_name == "GPT-2-decode@bs8"

    def test_transformer_request_matches_direct_backend(self, config):
        workload = get_workload("bert_base")
        reference = AnalyticalBackend().schedule_model(workload, config)
        with SchedulingService() as service:
            [schedule] = service.schedule_all([(workload, config)])
        assert schedule.layers == reference.layers

    def test_schedule_suite_futures_in_suite_order(self, config):
        with SchedulingService() as service:
            futures = service.schedule_suite("transformers", config)
            names = [future.result().model_name for future in futures]
        assert names == ["BERT-Base", "GPT-2-decode", "ViT-B/16"]


class _StallingBackend(BatchedCachedBackend):
    """Backend whose model scheduling blocks until an event is set."""

    def __init__(self, gate: threading.Event):
        super().__init__()
        self.gate = gate

    def schedule_model(self, model, cfg, model_name=None):
        assert self.gate.wait(timeout=60), "test gate was never opened"
        return super().schedule_model(model, cfg, model_name=model_name)


class TestTimeouts:
    def test_timed_out_request_surfaces_as_marker(self, config):
        gate = threading.Event()
        with SchedulingService(backend=_StallingBackend(gate)) as service:
            try:
                [result] = service.schedule_all(
                    [(resnet34(), config)], timeout=0.05
                )
            finally:
                gate.set()
            assert isinstance(result, TimedOutRequest)
            assert result.model_name == "ResNet-34"
            assert result.timeout_s == 0.05
            assert service.stats()["timed_out"] == 1

    def test_per_request_timeout_overrides_call_default(self, config):
        gate = threading.Event()
        with SchedulingService(backend=_StallingBackend(gate)) as service:
            try:
                request = ScheduleRequest(
                    model=resnet34(), config=config, timeout=0.05
                )
                [result] = service.schedule_all([request])  # no call-level default
            finally:
                gate.set()
            assert isinstance(result, TimedOutRequest)

    def test_timeout_does_not_poison_the_dedup_key(self, config, reference):
        """A retry after a timeout recomputes instead of re-awaiting."""
        gate = threading.Event()
        with SchedulingService(backend=_StallingBackend(gate)) as service:
            [first] = service.schedule_all([(resnet34(), config)], timeout=0.05)
            assert isinstance(first, TimedOutRequest)
            gate.set()
            [second] = service.schedule_all([(resnet34(), config)], timeout=60)
            assert second.layers == reference[("ResNet-34", False)].layers

    def test_compare_many_timeout_yields_marker_pairs(self, config):
        gate = threading.Event()
        with SchedulingService(backend=_StallingBackend(gate)) as service:
            try:
                [(arrayflex, conventional)] = service.compare_many(
                    [(resnet34(), config)], timeout=0.05
                )
            finally:
                gate.set()
            # Only the ArrayFlex side routes through the stalled
            # schedule_model; the marker carries which side timed out.
            assert isinstance(arrayflex, TimedOutRequest)
            assert arrayflex.conventional is False

    def test_timeout_never_cancels_a_shared_future(self, config, reference):
        """One caller's deadline must not destroy another's computation."""
        gate = threading.Event()
        backend = _StallingBackend(gate)
        with SchedulingService(backend=backend, max_workers=1) as service:
            # Occupy the only worker so the next submission stays queued
            # (a queued future is the one cancel() could actually kill).
            [blocker] = service.schedule_many([(mobilenet_v1(), config)])
            # First caller: no deadline, plans to wait for the result.
            [patient] = service.schedule_many([(resnet34(), config)])
            # Second caller: deduplicated onto the same queued future,
            # times out while everything is still gated.
            [result] = service.schedule_all([(resnet34(), config)], timeout=0.05)
            assert isinstance(result, TimedOutRequest)
            assert result.cancelled is False  # shared handle: not cancelled
            gate.set()
            assert patient.result(timeout=60).layers == (
                reference[("ResNet-34", False)].layers
            )
            blocker.result(timeout=60)

    def test_timeout_cancels_a_queued_sole_future(self, config):
        """The sole waiter's deadline does cancel queued work outright."""
        gate = threading.Event()
        with SchedulingService(
            backend=_StallingBackend(gate), max_workers=1
        ) as service:
            [blocker] = service.schedule_many([(mobilenet_v1(), config)])
            try:
                [result] = service.schedule_all(
                    [(resnet34(), config)], timeout=0.05
                )
            finally:
                gate.set()
            assert isinstance(result, TimedOutRequest)
            assert result.cancelled is True
            blocker.result(timeout=60)

    def test_generous_timeout_returns_results(self, config, reference):
        with SchedulingService() as service:
            [schedule] = service.schedule_all([(resnet34(), config)], timeout=60)
        assert schedule.layers == reference[("ResNet-34", False)].layers

    def test_close_after_timeout_does_not_block_on_abandoned_work(self, config):
        """What the CLI does after a timeout: walk away, cancel the queue."""
        gate = threading.Event()
        service = SchedulingService(backend=_StallingBackend(gate), max_workers=1)
        try:
            [running] = service.schedule_many([(mobilenet_v1(), config)])
            [queued] = service.schedule_many([(resnet34(), config)])
            start = time.monotonic()
            service.close(wait=False, cancel_futures=True)
            assert time.monotonic() - start < 5.0  # did not join the gated task
            assert queued.cancelled()
        finally:
            gate.set()
        running.result(timeout=60)  # the running task still completes

    def test_waiter_bookkeeping_does_not_leak(self, config):
        """Dedup hits on completed futures must not recreate waiter entries."""
        with SchedulingService() as service:
            [future] = service.schedule_many([(resnet34(), config)])
            future.result(timeout=60)
            for _ in range(3):  # dedup hits on the (memoised) done future
                service.schedule_all([(resnet34(), config)])
            assert service._waiters == {}

    def test_timeout_field_not_part_of_dedup_identity(self, config):
        with SchedulingService() as service:
            futures = service.schedule_many(
                [
                    ScheduleRequest(model=resnet34(), config=config, timeout=1.0),
                    ScheduleRequest(model=resnet34(), config=config, timeout=2.0),
                ]
            )
            assert futures[0] is futures[1]
            time.sleep(0)  # keep the futures referenced until both resolve


class TestSubmitCore:
    """The redesigned submit(Request) -> Response core and its adapters."""

    def test_submit_returns_ok_response(self, config, reference):
        from repro.serve import Request

        with SchedulingService() as service:
            response = service.submit(Request(model=resnet34(), config=config))
        assert response.ok
        assert response.status == "ok"
        assert response.model_name == "ResNet-34"
        assert response.unwrap().layers == reference[("ResNet-34", False)].layers

    def test_submit_accepts_tuple_shorthand(self, config):
        with SchedulingService() as service:
            response = service.submit((resnet34(), config))
        assert response.ok and response.model_name == "ResNet-34"

    def test_submit_many_marks_deduplicated_responses(self, config):
        with SchedulingService() as service:
            responses = service.submit_many(
                [(resnet34(), config), (resnet34(), config)]
            )
        assert [r.deduplicated for r in responses] == [False, True]
        assert responses[0].unwrap().layers == responses[1].unwrap().layers

    def test_compare_pairs_flex_and_conventional(self, config, reference):
        with SchedulingService() as service:
            [(arrayflex, conventional)] = service.compare([(resnet34(), config)])
        assert arrayflex.conventional is False
        assert conventional.conventional is True
        assert arrayflex.unwrap().layers == reference[("ResNet-34", False)].layers
        assert conventional.unwrap().layers == reference[("ResNet-34", True)].layers

    def test_timeout_response_unwrap_raises_typed_error(self, config):
        from repro.serve import RequestTimeout

        gate = threading.Event()
        with SchedulingService(backend=_StallingBackend(gate)) as service:
            try:
                response = service.submit((resnet34(), config), timeout=0.05)
            finally:
                gate.set()
            assert not response.ok
            assert response.status == "timeout"
            with pytest.raises(RequestTimeout):
                response.unwrap()

    def test_legacy_aliases_agree_with_submit_core(self, config):
        """One alias round-trip: same numbers through old and new surface."""
        with SchedulingService() as service:
            [legacy] = service.schedule_all([(resnet34(), config)])
            response = service.submit((resnet34(), config))
        assert legacy.layers == response.unwrap().layers


class TestCloseLifecycle:
    """close() is idempotent and safe around in-flight work (satellite of
    the daemon's graceful-drain path, which may race a with-block exit
    or a second signal)."""

    def test_close_is_idempotent(self, config):
        service = SchedulingService()
        assert service.closed is False
        service.close()
        assert service.closed is True
        service.close()  # second close: a no-op, not an error
        service.close(wait=False, cancel_futures=True)
        assert service.closed is True

    def test_context_manager_exit_after_explicit_close(self, config):
        with SchedulingService() as service:
            service.submit((resnet34(), config))
            service.close()
        assert service.closed  # __exit__ double-closed without raising

    def test_close_with_inflight_futures_waits_for_results(self, config):
        """A default close joins in-flight work; its futures still resolve."""
        gate = threading.Event()
        service = SchedulingService(backend=_StallingBackend(gate), max_workers=1)
        future = service.submit_future((resnet34(), config))
        closer = threading.Thread(target=service.close)
        closer.start()
        assert not future.done()  # close(wait=True) is blocked on the gate
        gate.set()
        closer.join(timeout=60)
        assert not closer.is_alive()
        assert future.result(timeout=60).model_name == "ResNet-34"

    def test_double_close_with_inflight_from_second_thread(self, config):
        """The drain/with-exit race: both closes return, nothing deadlocks."""
        gate = threading.Event()
        service = SchedulingService(backend=_StallingBackend(gate), max_workers=1)
        future = service.submit_future((resnet34(), config))
        gate.set()
        threads = [threading.Thread(target=service.close) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert service.closed
        assert future.result(timeout=60).model_name == "ResNet-34"

    def test_submit_after_close_fails_cleanly(self, config):
        service = SchedulingService()
        service.close()
        with pytest.raises(RuntimeError):
            service.submit_future((resnet34(), config))


class TestFailureRecovery:
    def test_failed_future_is_not_cached(self, config):
        """A transient error must not poison the dedup key forever."""
        calls = {"n": 0}

        class FlakyBackend(BatchedCachedBackend):
            def schedule_model(self, model, cfg, model_name=None):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise OSError("transient store failure")
                return super().schedule_model(model, cfg, model_name=model_name)

        with SchedulingService(backend=FlakyBackend()) as service:
            [first] = service.schedule_many([(resnet34(), config)])
            with pytest.raises(OSError):
                first.result(timeout=60)
            [second] = service.schedule_many([(resnet34(), config)])
            assert second is not first
            assert second.result(timeout=60).model_name == "ResNet-34"
