"""Tests for the batch-serving front-end (`repro.serve`)."""

import threading

import pytest

from repro.backends import AnalyticalBackend, BatchedCachedBackend, DecisionStore
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import mobilenet_v1, resnet34
from repro.serve import ScheduleRequest, SchedulingService, default_max_workers


@pytest.fixture(scope="module")
def config():
    return ArrayFlexConfig.paper_128x128()


@pytest.fixture(scope="module")
def reference(config):
    backend = AnalyticalBackend()
    return {
        ("ResNet-34", False): backend.schedule_model(resnet34(), config),
        ("ResNet-34", True): backend.schedule_model_conventional(resnet34(), config),
        ("MobileNetV1", False): backend.schedule_model(mobilenet_v1(), config),
    }


class TestConstruction:
    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            SchedulingService(executor="rocket")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SchedulingService(max_workers=0)

    def test_max_workers_auto_sized_from_cpu_count(self):
        assert default_max_workers("process") >= 1
        assert default_max_workers("thread") >= 1
        with SchedulingService() as service:
            assert service.max_workers == default_max_workers("thread")

    def test_cache_dir_requires_batched_backend(self, tmp_path):
        with pytest.raises(ValueError):
            SchedulingService(backend="analytical", cache_dir=tmp_path)

    def test_cache_dir_attaches_store(self, tmp_path):
        with SchedulingService(cache_dir=tmp_path) as service:
            assert isinstance(service.backend, BatchedCachedBackend)
            assert service.backend.store is not None
            assert service.backend.store.directory == tmp_path

    def test_bad_request_type_rejected(self, config):
        with SchedulingService() as service:
            with pytest.raises(TypeError):
                service.schedule_many([42])


class TestScheduleMany:
    def test_futures_in_request_order(self, config, reference):
        with SchedulingService() as service:
            futures = service.schedule_many(
                [(resnet34(), config), (mobilenet_v1(), config)]
            )
            assert futures[0].result().layers == reference[("ResNet-34", False)].layers
            assert futures[1].result().layers == reference[("MobileNetV1", False)].layers

    def test_conventional_requests(self, config, reference):
        with SchedulingService() as service:
            [schedule] = service.schedule_all(
                [ScheduleRequest(model=resnet34(), config=config, conventional=True)]
            )
        assert schedule.accelerator == "Conventional"
        assert schedule.layers == reference[("ResNet-34", True)].layers

    def test_gemm_list_requests(self, config):
        gemms = [GemmShape(m=64, n=64, t=64, name="g")]
        with SchedulingService() as service:
            [schedule] = service.schedule_all([(gemms, config)])
        assert len(schedule.layers) == 1

    def test_duplicates_share_one_future(self, config):
        with SchedulingService() as service:
            futures = service.schedule_many(
                [(resnet34(), config), (resnet34(), config), (resnet34(), config)]
            )
            assert futures[0] is futures[1] is futures[2]
            stats = service.stats()
        assert stats["requests"] == 3
        assert stats["submitted"] == 1
        assert stats["deduplicated"] == 2

    def test_dedup_spans_calls(self, config):
        with SchedulingService() as service:
            [first] = service.schedule_many([(resnet34(), config)])
            [second] = service.schedule_many([(resnet34(), config)])
            assert first is second

    def test_distinct_configs_not_deduplicated(self, config):
        other = config.with_size(64, 64)
        with SchedulingService() as service:
            futures = service.schedule_many([(resnet34(), config), (resnet34(), other)])
            assert futures[0] is not futures[1]
            assert futures[0].result().rows == 128
            assert futures[1].result().rows == 64

    def test_process_executor_matches_thread_executor(self, config, reference):
        requests = [
            ScheduleRequest(model=resnet34(), config=config),
            ScheduleRequest(model=resnet34(), config=config, conventional=True),
        ]
        with SchedulingService(executor="process", max_workers=2) as service:
            schedules = service.schedule_all(requests)
        assert schedules[0].layers == reference[("ResNet-34", False)].layers
        assert schedules[1].layers == reference[("ResNet-34", True)].layers


class TestConcurrency:
    def test_concurrent_schedule_many_is_safe_and_exact(self, config, reference):
        """Many threads hammering one service agree with the reference."""
        service = SchedulingService(max_workers=8)
        errors = []
        configs = [config, config.with_size(64, 64), config.with_size(256, 256)]

        def hammer():
            try:
                for cfg in configs:
                    futures = service.schedule_many(
                        [(resnet34(), cfg), (mobilenet_v1(), cfg)]
                    )
                    for future in futures:
                        future.result(timeout=60)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert not errors
            [schedule] = service.schedule_all([(resnet34(), config)])
            assert schedule.layers == reference[("ResNet-34", False)].layers
        finally:
            service.close()

    def test_concurrent_writers_share_one_store(self, tmp_path, config):
        """Two services racing on one cache directory corrupt nothing."""
        reference = AnalyticalBackend().schedule_model(resnet34(), config)
        configs = [config, config.with_size(64, 64)]

        def run_service():
            with SchedulingService(cache_dir=tmp_path, max_workers=4) as service:
                service.schedule_all(
                    [(model(), cfg) for model in (resnet34, mobilenet_v1) for cfg in configs]
                )

        threads = [threading.Thread(target=run_service) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        warm = BatchedCachedBackend(store=DecisionStore(tmp_path))
        assert warm.schedule_model(resnet34(), config).layers == reference.layers
        assert warm.cache_info()["misses"] == 0


class TestStats:
    def test_thread_stats_include_backend_cache(self, config):
        with SchedulingService() as service:
            service.schedule_all([(resnet34(), config)])
            stats = service.stats()
        assert stats["executor"] == "thread"
        assert stats["submitted"] == 1
        assert "misses" in stats and "store_hits" in stats

    def test_process_stats_omit_backend_cache(self, config):
        with SchedulingService(executor="process", max_workers=1) as service:
            service.schedule_all([(resnet34(), config)])
            stats = service.stats()
        assert stats["executor"] == "process"
        assert "misses" not in stats


class TestTotalsOnly:
    def test_totals_match_schedule_sums(self, config):
        with SchedulingService() as service:
            totals, schedule = service.schedule_all(
                [
                    ScheduleRequest(model=resnet34(), config=config, totals_only=True),
                    ScheduleRequest(model=resnet34(), config=config),
                ]
            )
        assert totals.time_ns == schedule.total_time_ns
        assert totals.energy_nj == schedule.total_energy_nj

    def test_totals_and_schedule_requests_not_conflated(self, config):
        with SchedulingService() as service:
            futures = service.schedule_many(
                [
                    ScheduleRequest(model=resnet34(), config=config, totals_only=True),
                    ScheduleRequest(model=resnet34(), config=config),
                ]
            )
            assert futures[0] is not futures[1]

    def test_totals_through_process_pool(self, config):
        request = ScheduleRequest(
            model=resnet34(), config=config, conventional=True, totals_only=True
        )
        with SchedulingService(executor="process", max_workers=1) as service:
            [totals] = service.schedule_all([request])
        reference = AnalyticalBackend().schedule_model_conventional(resnet34(), config)
        assert totals.time_ns == reference.total_time_ns
        assert totals.energy_nj == reference.total_energy_nj


class TestFailureRecovery:
    def test_failed_future_is_not_cached(self, config):
        """A transient error must not poison the dedup key forever."""
        calls = {"n": 0}

        class FlakyBackend(BatchedCachedBackend):
            def schedule_model(self, model, cfg, model_name=None):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise OSError("transient store failure")
                return super().schedule_model(model, cfg, model_name=model_name)

        with SchedulingService(backend=FlakyBackend()) as service:
            [first] = service.schedule_many([(resnet34(), config)])
            with pytest.raises(OSError):
                first.result(timeout=60)
            [second] = service.schedule_many([(resnet34(), config)])
            assert second is not first
            assert second.result(timeout=60).model_name == "ResNet-34"
