"""Unit tests of the observability layer (`repro.obs`).

Covers the three pillars in isolation: hierarchical spans and their
Chrome-trace export, the get-or-create metrics registry and its
Prometheus text exposition, and the JSON-lines logging configuration
with request-ID correlation.  Cross-layer behaviour (spans through the
daemon and process pools, /metrics bit-identity) lives in
``test_obs_integration.py``.
"""

import io
import json
import logging
import pickle

import pytest

from repro.obs.logs import (
    JsonFormatter,
    bind_request_id,
    configure_logging,
    current_request_id,
)
from repro.obs.metrics import DEFAULT_BUCKETS_MS, MetricsRegistry
from repro.obs.trace import (
    SpanContext,
    Tracer,
    call_with_context,
    get_tracer,
    set_tracer,
)


@pytest.fixture()
def tracer():
    """A fresh enabled tracer installed as the process global."""
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


# ---------------------------------------------------------------------- #
# Tracing
# ---------------------------------------------------------------------- #
class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work", answer=42) as span:
            span.set(more=True)
            assert span.context() is None
        assert tracer.spans() == []
        assert tracer.current_context() is None

    def test_disabled_span_is_shared(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")  # no per-call allocation

    def test_nesting_links_parent_ids(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None
        assert outer.duration_us >= inner.duration_us >= 1

    def test_siblings_share_parent_not_each_other(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.parent_id == outer.span_id
        assert second.parent_id == outer.span_id
        assert second.parent_id != first.span_id

    def test_trace_id_argument_pins_a_new_trace(self, tracer):
        with tracer.span("request", trace_id="req-1") as request:
            with tracer.span("child") as child:
                pass
        assert request.trace_id == "req-1"
        assert request.parent_id is None  # ambient trace (none) did not match
        assert child.trace_id == "req-1"
        assert child.parent_id == request.span_id

    def test_exception_marks_span_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "ValueError"

    def test_attributes_and_set(self, tracer):
        with tracer.span("work", layers=3) as span:
            span.set(outcome="ok")
        assert span.attributes == {"layers": 3, "outcome": "ok"}

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 2

    def test_drain_empties_the_buffer(self, tracer):
        with tracer.span("work"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.spans() == []

    def test_chrome_trace_export(self, tracer, tmp_path):
        with tracer.span("outer"):
            with tracer.span("inner", tile=7):
                pass
        path = tmp_path / "trace.json"
        assert tracer.export_chrome(path) == 2
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert [e["ph"] for e in events] == ["X", "X"]
        inner = next(e for e in events if e["name"] == "inner")
        outer = next(e for e in events if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert inner["args"]["tile"] == 7
        assert inner["dur"] >= 1 and inner["ts"] > 0

    def test_call_with_context_reparents_worker_spans(self, tracer):
        def work():
            with get_tracer().span("worker.step"):
                pass
            return "done"

        with tracer.span("request", trace_id="req-7") as request:
            context = tracer.current_context()
            assert context == SpanContext("req-7", request.span_id)
            result, spans = call_with_context(context, work)
        assert result == "done"
        (worker_span,) = spans
        assert worker_span.trace_id == "req-7"
        assert worker_span.parent_id == context.span_id
        # The worker's local tracer must not have leaked into the global.
        assert get_tracer() is tracer

    def test_call_with_context_ids_do_not_collide(self, tracer):
        def work():
            with get_tracer().span("worker.step"):
                pass

        with tracer.span("request") as request:
            _, spans = call_with_context(request.context(), work)
        tracer.extend(spans)
        ids = [span.span_id for span in tracer.spans()]
        assert len(ids) == len(set(ids))

    def test_span_is_picklable(self, tracer):
        with tracer.span("work", layers=2) as span:
            pass
        clone = pickle.loads(pickle.dumps(span))
        assert clone.name == "work" and clone.attributes == {"layers": 2}


# ---------------------------------------------------------------------- #
# Metrics
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", endpoint="/a")
        counter.inc()
        counter.inc(2)
        assert registry.counter("requests_total", endpoint="/a") is counter
        assert counter.value == 3
        counter.reset()
        assert counter.value == 0

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", backend="batched")
        b = registry.counter("hits", backend="sampled")
        a.inc()
        assert b.value == 0
        assert len(registry.family("hits")) == 2

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        gauge.set(4)
        gauge.add(-1)
        assert gauge.value == 3

    def test_histogram_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_ms", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 5000):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5055.5)
        assert histogram.cumulative() == {1: 1, 10: 2, 100: 3, "+Inf": 4}

    def test_histogram_default_buckets(self):
        registry = MetricsRegistry()
        assert registry.histogram("latency_ms").buckets == DEFAULT_BUCKETS_MS

    def test_attach_merges_reads_not_writes(self):
        root, child = MetricsRegistry(), MetricsRegistry()
        root.attach(child)
        child.counter("store_merges_total").inc(5)
        (merges,) = root.family("store_merges_total")
        assert merges.value == 5
        assert root.counter("store_merges_total") is not merges  # own namespace

    def test_to_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", endpoint="/v1/schedule").inc(7)
        registry.histogram("latency_ms", buckets=(1, 10)).observe(3.0)
        text = registry.to_prometheus()
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{endpoint="/v1/schedule"} 7' in text
        assert '# TYPE latency_ms histogram' in text
        assert 'latency_ms_bucket{le="1"} 0' in text
        assert 'latency_ms_bucket{le="10"} 1' in text
        assert 'latency_ms_bucket{le="+Inf"} 1' in text
        assert 'latency_ms_sum 3' in text
        assert 'latency_ms_count 1' in text

    def test_registry_pickles_without_children(self):
        root, child = MetricsRegistry(), MetricsRegistry()
        root.counter("own_total").inc(2)
        root.attach(child)
        child.counter("child_total").inc(9)
        clone = pickle.loads(pickle.dumps(root))
        assert clone.counter("own_total").value == 2
        assert clone.family("child_total") == []  # children stay with owners


# ---------------------------------------------------------------------- #
# Logging
# ---------------------------------------------------------------------- #
@pytest.fixture()
def repro_logger():
    """Configured 'repro' logger writing JSON lines to a buffer."""
    stream = io.StringIO()
    logger = configure_logging(level="DEBUG", json_lines=True, stream=stream)
    try:
        yield logger, stream
    finally:
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)
        logger.propagate = True


class TestLogs:
    def test_json_lines_carry_request_id(self, repro_logger):
        logger, stream = repro_logger
        with bind_request_id("req-42"):
            assert current_request_id() == "req-42"
            logging.getLogger("repro.test").info("hello", extra={"layers": 3})
        assert current_request_id() is None
        (line,) = stream.getvalue().splitlines()
        record = json.loads(line)
        assert record["message"] == "hello"
        assert record["request_id"] == "req-42"
        assert record["layers"] == 3
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test"

    def test_configure_logging_is_idempotent(self, repro_logger):
        logger, _ = repro_logger
        configure_logging(level="DEBUG", json_lines=True, stream=io.StringIO())
        configure_logging(json_lines=False, stream=io.StringIO())
        assert len(logger.handlers) == 1

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")

    def test_non_serialisable_extra_falls_back_to_repr(self):
        formatter = JsonFormatter()
        record = logging.LogRecord("repro.x", logging.INFO, "f.py", 1, "msg", (), None)
        record.payload = object()
        parsed = json.loads(formatter.format(record))  # fallback: repr everything
        assert "object object" in parsed["payload"]
