"""Tests for layer-level functional inference on the simulated accelerators."""

import numpy as np
import pytest

from repro.core.config import ArrayFlexConfig
from repro.nn.inference import LayerExecutor
from repro.nn.layers import Conv2dLayer, LinearLayer


@pytest.fixture(scope="module")
def config():
    return ArrayFlexConfig(rows=16, cols=16, supported_depths=(1, 2, 4))


def small_conv(**overrides):
    defaults = dict(
        name="conv",
        in_channels=6,
        out_channels=8,
        kernel_size=3,
        stride=1,
        padding=1,
        input_height=5,
        input_width=5,
    )
    defaults.update(overrides)
    return Conv2dLayer(**defaults)


def tensors_for(layer, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.integers(-4, 4, size=(layer.in_channels, layer.input_height, layer.input_width))
    w = rng.integers(
        -4, 4,
        size=(layer.out_channels, layer.channels_per_group, layer.kernel_size, layer.kernel_size),
    )
    return x.astype(np.int64), w.astype(np.int64)


class TestConvInference:
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_dense_conv_verified(self, config, depth):
        layer = small_conv()
        x, w = tensors_for(layer, seed=depth)
        executor = LayerExecutor(config)
        result = executor.run_conv2d(layer, x, w, collapse_depth=depth, verify=True)
        assert result.verified is True
        assert result.collapse_depth == depth
        assert result.output.shape == (8, 5, 5)

    def test_auto_depth_matches_optimizer(self, config):
        layer = small_conv()
        x, w = tensors_for(layer, seed=9)
        executor = LayerExecutor(config)
        result = executor.run_conv2d(layer, x, w, verify=False)
        from repro.core.optimizer import PipelineOptimizer
        from repro.nn.gemm_mapping import layer_to_gemm

        expected = PipelineOptimizer(config).best_depth(layer_to_gemm(layer)).collapse_depth
        assert result.collapse_depth == expected

    def test_depthwise_conv_verified(self, config):
        layer = small_conv(in_channels=6, out_channels=6, groups=6)
        x, w = tensors_for(layer, seed=2)
        executor = LayerExecutor(config)
        result = executor.run_conv2d(layer, x, w, collapse_depth=2, verify=True)
        assert result.verified is True

    def test_conventional_baseline_forces_k1(self, config):
        layer = small_conv()
        x, w = tensors_for(layer, seed=3)
        executor = LayerExecutor(config, configurable=False)
        result = executor.run_conv2d(layer, x, w, verify=True)
        assert result.collapse_depth == 1
        assert result.verified is True
        with pytest.raises(ValueError):
            executor.run_conv2d(layer, x, w, collapse_depth=2)

    def test_stats_accumulated(self, config):
        layer = small_conv()
        x, w = tensors_for(layer, seed=4)
        result = LayerExecutor(config).run_conv2d(layer, x, w, collapse_depth=2)
        assert result.total_cycles > 0
        assert result.stats.mac_operations > 0

    def test_shallow_mode_uses_fewer_cycles(self, config):
        layer = small_conv(in_channels=16, out_channels=16)
        x, w = tensors_for(layer, seed=5)
        executor = LayerExecutor(config)
        cycles = {
            depth: executor.run_conv2d(layer, x, w, collapse_depth=depth).total_cycles
            for depth in (1, 4)
        }
        assert cycles[4] < cycles[1]


class TestLinearInference:
    def test_linear_verified(self, config):
        layer = LinearLayer("fc", in_features=20, out_features=12, tokens=3)
        rng = np.random.default_rng(0)
        x = rng.integers(-5, 5, size=(3, 20)).astype(np.int64)
        w = rng.integers(-5, 5, size=(12, 20)).astype(np.int64)
        result = LayerExecutor(config).run_linear(layer, x, w, verify=True)
        assert result.verified is True
        assert result.output.shape == (3, 12)

    def test_linear_accepts_1d_single_token(self, config):
        layer = LinearLayer("fc", in_features=10, out_features=4)
        rng = np.random.default_rng(1)
        x = rng.integers(-5, 5, size=10).astype(np.int64)
        w = rng.integers(-5, 5, size=(4, 10)).astype(np.int64)
        result = LayerExecutor(config).run_linear(layer, x, w, verify=True)
        assert result.verified is True
        assert result.output.shape == (1, 4)

    def test_linear_shape_validation(self, config):
        layer = LinearLayer("fc", in_features=10, out_features=4)
        executor = LayerExecutor(config)
        with pytest.raises(ValueError):
            executor.run_linear(layer, np.zeros((1, 9)), np.zeros((4, 10)))
        with pytest.raises(ValueError):
            executor.run_linear(layer, np.zeros((1, 10)), np.zeros((4, 9)))
