"""Tests for the configuration-bound clock model (Eq. 6 time conversion)."""

import pytest

from repro.core.clock import ClockModel
from repro.core.config import ArrayFlexConfig


@pytest.fixture(scope="module")
def clock():
    return ClockModel(ArrayFlexConfig(rows=128, cols=128))


class TestOperatingPoints:
    def test_paper_frequency_table(self, clock):
        table = clock.frequency_table()
        assert table["conventional"] == pytest.approx(2.0)
        assert table["arrayflex_k1"] == pytest.approx(1.8)
        assert table["arrayflex_k2"] == pytest.approx(1.7)
        assert table["arrayflex_k4"] == pytest.approx(1.4)

    def test_unsupported_depth_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.frequency_ghz(3)

    def test_all_points_sorted(self, clock):
        depths = [p.collapse_depth for p in clock.all_arrayflex_points()]
        assert depths == [1, 2, 4]

    def test_conventional_point_not_configurable(self, clock):
        assert not clock.conventional_point().configurable

    def test_period_matches_frequency(self, clock):
        for depth in (1, 2, 4):
            assert clock.period_ns(depth) == pytest.approx(1.0 / clock.frequency_ghz(depth))


class TestExecutionTime:
    def test_conventional_time(self, clock):
        assert clock.conventional_execution_time_ns(2000) == pytest.approx(1000.0)

    def test_arrayflex_time(self, clock):
        assert clock.execution_time_ns(1700, 2) == pytest.approx(1000.0)

    def test_zero_cycles(self, clock):
        assert clock.execution_time_ns(0, 1) == 0.0

    def test_negative_cycles_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.execution_time_ns(-1, 1)
        with pytest.raises(ValueError):
            clock.conventional_execution_time_ns(-5)

    def test_same_cycles_slower_on_deeper_mode(self, clock):
        cycles = 10_000
        times = [clock.execution_time_ns(cycles, k) for k in (1, 2, 4)]
        assert times == sorted(times)

    def test_fig5_config_exposes_k3(self):
        clock = ClockModel(ArrayFlexConfig.fig5_132x132())
        assert clock.frequency_ghz(3) == pytest.approx(1.5)
