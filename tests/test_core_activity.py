"""Tests for the pluggable activity-model layer (`repro.core.activity`)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.activity import (
    ACTIVITY_MODELS,
    ActivityModel,
    ConstantActivity,
    UtilizationActivity,
    create_activity_model,
    tiling_utilization,
    tiling_utilization_vector,
)
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape


class TestTilingUtilization:
    def test_exact_tiling_is_full(self):
        assert tiling_utilization(m=256, n=256, rows=128, cols=128) == 1.0
        assert tiling_utilization(m=128, n=384, rows=128, cols=128) == 1.0

    def test_hand_computed_goldens_non_divisible(self):
        """Hand-computed edge-tile math for non-divisible M / N.

        A (N=150, M=100) weight matrix on a 128x128 array tiles into
        ceil(150/128) * ceil(100/128) = 2 * 1 tiles = 2 * 128 * 128 PEs
        of footprint, of which 150 * 100 are occupied.
        """
        assert tiling_utilization(m=100, n=150, rows=128, cols=128) == (
            150 * 100
        ) / (2 * 1 * 128 * 128)
        # ResNet-34 layer 28: (M=512, N=2304) on 128x128 -> 18x4 tiles,
        # both dimensions divide exactly -> fully occupied.
        assert tiling_utilization(m=512, n=2304, rows=128, cols=128) == 1.0
        # Same layer on 256x256: N=2304 = 9*256 exact, M=512 = 2*256 exact.
        assert tiling_utilization(m=512, n=2304, rows=256, cols=256) == 1.0
        # MobileNet-style depthwise layer (N = 9) on 128x128: one row-tile,
        # only 9 of 128 rows occupied.
        assert tiling_utilization(m=128, n=9, rows=128, cols=128) == 9 / 128
        # Non-divisible in both dimensions: (N=200, M=300) on 128x128 ->
        # 2x3 tiles, 200*300 occupied of 6*128*128.
        assert tiling_utilization(m=300, n=200, rows=128, cols=128) == (
            200 * 300
        ) / (6 * 128 * 128)

    def test_bounds(self):
        assert 0.0 < tiling_utilization(m=1, n=1, rows=256, cols=256) <= 1.0
        with pytest.raises(ValueError):
            tiling_utilization(m=0, n=1, rows=8, cols=8)
        with pytest.raises(ValueError):
            tiling_utilization(m=1, n=1, rows=0, cols=8)

    @settings(max_examples=100, deadline=None)
    @given(
        m=st.integers(1, 5000),
        n=st.integers(1, 5000),
        rows=st.sampled_from([8, 64, 128, 132, 256]),
        cols=st.sampled_from([8, 64, 128, 132, 256]),
    )
    def test_vector_matches_scalar_bit_for_bit(self, m, n, rows, cols):
        scalar = tiling_utilization(m, n, rows, cols)
        vector = tiling_utilization_vector(
            np.array([m], dtype=np.int64), np.array([n], dtype=np.int64), rows, cols
        )
        assert float(vector[0]) == scalar
        assert 0.0 < scalar <= 1.0


class TestActivityModels:
    def test_registry_covers_both_models(self):
        assert set(ACTIVITY_MODELS) == {"constant", "utilization"}

    @pytest.mark.parametrize("name", ["constant", "utilization"])
    def test_create_by_name(self, name):
        model = create_activity_model(name)
        assert isinstance(model, ActivityModel)
        assert model.name == name

    def test_none_resolves_to_constant_one(self):
        model = create_activity_model(None)
        assert model == ConstantActivity(1.0)

    def test_instance_passes_through(self):
        model = UtilizationActivity()
        assert create_activity_model(model) is model

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown activity model"):
            create_activity_model("oracle")

    def test_constant_bounds_validated(self):
        with pytest.raises(ValueError):
            ConstantActivity(0.0)
        with pytest.raises(ValueError):
            ConstantActivity(1.5)

    def test_cache_keys_distinct(self):
        keys = {
            ConstantActivity().cache_key(),
            ConstantActivity(0.5).cache_key(),
            UtilizationActivity().cache_key(),
        }
        assert len(keys) == 3

    def test_constant_ignores_geometry(self):
        model = ConstantActivity(0.7)
        gemm = GemmShape(m=100, n=150, t=7, name="x")
        assert model.activity(gemm, 128, 128) == 0.7
        assert model.activity(gemm, 8, 8) == 0.7
        vector = model.activity_vector(
            np.array([100]), np.array([150]), np.array([7]), 128, 128
        )
        assert float(vector[0]) == 0.7

    def test_utilization_model_matches_tiling_function(self):
        model = UtilizationActivity()
        gemm = GemmShape(m=100, n=150, t=49, name="x")
        assert model.activity(gemm, 128, 128) == tiling_utilization(100, 150, 128, 128)

    def test_utilization_below_one_iff_inexact_tiling(self):
        model = UtilizationActivity()
        exact = GemmShape(m=256, n=128, t=10, name="exact")
        inexact = GemmShape(m=255, n=128, t=10, name="inexact")
        assert model.activity(exact, 128, 128) == 1.0
        assert model.activity(inexact, 128, 128) < 1.0


class TestConfigIntegration:
    def test_default_is_constant_one(self):
        config = ArrayFlexConfig.paper_128x128()
        assert config.activity_model == ConstantActivity(1.0)

    def test_string_coerced_to_model(self):
        config = ArrayFlexConfig(rows=64, cols=64, activity_model="utilization")
        assert isinstance(config.activity_model, UtilizationActivity)

    def test_cache_key_distinguishes_activity_models(self):
        constant = ArrayFlexConfig.paper_128x128()
        derated = constant.with_activity_model("utilization")
        assert constant.cache_key() != derated.cache_key()
        assert derated.activity_model == UtilizationActivity()
        # Everything else is preserved by the copy.
        assert (derated.rows, derated.cols) == (constant.rows, constant.cols)
        assert derated.supported_depths == constant.supported_depths

    def test_invalid_activity_model_rejected(self):
        with pytest.raises(ValueError):
            ArrayFlexConfig(rows=8, cols=8, activity_model="oracle")
        with pytest.raises(ValueError):
            ArrayFlexConfig(rows=8, cols=8, activity_model=object())
