"""Tests for the columnar decision codec (`repro.backends.decisions`).

The codec is what makes the v2 store's zero-copy read path safe: every
row any backend writes must survive the list -> structured-record ->
list round trip bit-exactly (``error_bound`` ``None`` included, via the
``NaN`` sentinel), and a shard the codec cannot read back must surface
as corruption, never as silently-wrong numbers.  The concurrent-writer
stress test pins the store's merge-on-write guarantee on the new format.
"""

import math
import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import AnalyticalBackend, BatchedCachedBackend, SampledSimBackend
from repro.backends.decisions import (
    DECISION_DTYPE,
    DECISION_ROW_WIDTH,
    Decision,
    decision_from_row,
    decision_to_row,
    record_to_row,
    records_index,
    rows_to_records,
)
from repro.backends.store import DecisionStore
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape
from repro.timing.power_model import ArrayPowerBreakdown

#: Finite doubles (the codec's NaN sentinel is reserved for None).
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
positive_int = st.integers(min_value=1, max_value=2**40)


@st.composite
def decision_rows(draw):
    """Arbitrary well-formed decision rows, as any backend would emit them."""
    power = [draw(finite) for _ in range(8)]
    error_bound = draw(st.one_of(st.none(), finite))
    return [
        draw(st.integers(min_value=1, max_value=64)),  # collapse_depth
        draw(positive_int),                            # cycles
        draw(finite),                                  # clock_frequency_ghz
        draw(finite),                                  # execution_time_ns
        draw(finite),                                  # analytical_depth
        draw(finite),                                  # activity
        draw(finite),                                  # array_utilization
        *power,
        error_bound,
    ]


@st.composite
def keyed_rows(draw):
    """A shard's worth of decisions: distinct (m, n, t) keys -> rows."""
    keys = draw(
        st.lists(
            st.tuples(positive_int, positive_int, positive_int),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    return {key: draw(decision_rows()) for key in keys}


class TestRowCodecRoundTrip:
    @given(decisions=keyed_rows())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_is_bit_identical(self, decisions):
        records = rows_to_records(decisions)
        assert records.dtype == DECISION_DTYPE
        index = records_index(records)
        assert set(index) == set(decisions)
        for key, row in decisions.items():
            decoded = record_to_row(records[index[key]])
            assert decoded == row  # == is bit-exact for int/float/None

    @given(row=decision_rows())
    @settings(max_examples=60, deadline=None)
    def test_decision_survives_the_full_store_codec(self, row):
        """Decision -> row -> record -> row -> Decision is the identity."""
        decision = decision_from_row(row)
        encoded = rows_to_records({(1, 2, 3): decision_to_row(decision)})
        assert decision_from_row(record_to_row(encoded[0])) == decision

    def test_none_error_bound_encodes_as_nan(self):
        records = rows_to_records({(1, 1, 1): [1, 1] + [0.0] * 13 + [None]})
        assert math.isnan(float(records[0]["error_bound"]))
        assert record_to_row(records[0])[-1] is None

    def test_finite_error_bound_round_trips(self):
        records = rows_to_records({(1, 1, 1): [1, 1] + [0.0] * 13 + [0.03125]})
        assert record_to_row(records[0])[-1] == 0.03125

    def test_row_width_matches_the_dtype(self):
        # 3 key columns + the decision row = the structured record.
        assert len(DECISION_DTYPE.names) == DECISION_ROW_WIDTH + 3

    def test_records_index_later_duplicates_win(self):
        array = np.concatenate(
            [
                rows_to_records({(1, 1, 1): [1, 1] + [0.0] * 13 + [None]}),
                rows_to_records({(1, 1, 1): [2, 2] + [0.0] * 13 + [None]}),
            ]
        )
        assert records_index(array) == {(1, 1, 1): 1}

    def test_malformed_inputs_rejected(self):
        good = [1, 1] + [0.0] * 13 + [None]
        with pytest.raises(ValueError):
            rows_to_records({"1,1,1": good})
        with pytest.raises(ValueError):
            rows_to_records({(1, 1): good})
        with pytest.raises(ValueError):
            rows_to_records({(1, 1, 1): good[:-2]})


class TestBackendRowShapes:
    """Every decision-producing backend's real rows fit the codec."""

    GEMM = GemmShape(m=20, n=33, t=40)

    def test_batched_backend_rows_round_trip(self):
        config = ArrayFlexConfig(rows=16, cols=16)
        backend = BatchedCachedBackend()
        decision = backend._decide_batch([self.GEMM], config)[0]
        assert decision.error_bound is None
        encoded = rows_to_records({(20, 33, 40): decision_to_row(decision)})
        assert decision_from_row(record_to_row(encoded[0])) == decision

    def test_sampled_backend_rows_round_trip(self):
        config = ArrayFlexConfig(rows=16, cols=16)
        backend = SampledSimBackend(sample_fraction=0.5)
        decision = backend._decide(self.GEMM, config)
        assert decision.error_bound is not None
        encoded = rows_to_records({(20, 33, 40): decision_to_row(decision)})
        assert decision_from_row(record_to_row(encoded[0])) == decision

    def test_power_breakdown_reconstructs(self):
        power = ArrayPowerBreakdown(
            multiplier=1.0,
            carry_propagate_adder=2.0,
            carry_save_adder=3.0,
            bypass_muxes=4.0,
            register_data=5.0,
            register_clock=6.0,
            leakage=7.0,
            total_mw=28.0,
        )
        decision = Decision(
            collapse_depth=2,
            cycles=100,
            clock_frequency_ghz=1.7,
            execution_time_ns=58.8,
            analytical_depth=3.5,
            activity=0.5,
            array_utilization=0.9,
            power=power,
            error_bound=None,
        )
        row = decision_to_row(decision)
        encoded = rows_to_records({(1, 1, 1): row})
        assert decision_from_row(record_to_row(encoded[0])).power == power


class TestCorruption:
    def test_truncated_npy_payload_warns_and_counts(self, tmp_path):
        config = ArrayFlexConfig(rows=16, cols=16)
        key = config.cache_key()
        writer = DecisionStore(tmp_path)
        writer.put_many(
            key,
            {(m, m, m): [1, 1] + [0.0] * 13 + [None] for m in range(1, 20)},
        )
        shard = next(tmp_path.glob("decisions-*.npy"))
        shard.write_bytes(shard.read_bytes()[:64])  # header survives, data gone
        reader = DecisionStore(tmp_path)
        with pytest.warns(RuntimeWarning, match=shard.name):
            assert reader.get(key, 1, 1, 1) is None
        assert reader.stats()["corrupt_shards"] >= 1

    def test_unreadable_sidecar_warns_and_counts(self, tmp_path):
        key = ("cfg",)
        DecisionStore(tmp_path).put_many(key, {(1, 1, 1): [1, 1] + [0.0] * 13 + [None]})
        next(tmp_path.glob("decisions-*.meta.json")).write_text("{not json")
        reader = DecisionStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="meta.json"):
            assert reader.get(key, 1, 1, 1) is None
        assert reader.stats()["corrupt_shards"] >= 1

    def test_wrong_dtype_payload_is_corrupt_not_misread(self, tmp_path):
        key = ("cfg",)
        store = DecisionStore(tmp_path)
        store.put_many(key, {(1, 1, 1): [1, 1] + [0.0] * 13 + [None]})
        shard = next(tmp_path.glob("decisions-*.npy"))
        np.save(open(shard, "wb"), np.zeros(4))  # plain float64 vector
        reader = DecisionStore(tmp_path)
        with pytest.warns(RuntimeWarning):
            assert reader.get(key, 1, 1, 1) is None


def _stress_writer(args):
    """Worker: merge one slice of rows into a shared shard, many times."""
    directory, worker, rounds = args
    store = DecisionStore(directory)
    key = ("stress",)
    for round_index in range(rounds):
        store.put_many(
            key,
            {
                (worker, round_index, offset): [1, worker + 1]
                + [float(round_index)] * 13
                + [None]
                for offset in range(5)
            },
        )
    return worker


class TestConcurrentWriters:
    def test_parallel_merges_corrupt_nothing_and_keep_the_last_merge(self, tmp_path):
        """Four processes hammering one shard: racing replaces may drop a
        merge that another writer's read-modify-write overlapped (lost
        work is re-derivable — 'lose at most duplicated work'), but the
        shard must stay readable, every surviving row must be bit-correct,
        and the chronologically last replace — the final round of whichever
        writer finished last — must be fully present."""
        workers, rounds = 4, 6
        with ProcessPoolExecutor(max_workers=workers) as pool:
            done = list(
                pool.map(
                    _stress_writer,
                    [(str(tmp_path), worker, rounds) for worker in range(workers)],
                )
            )
        assert sorted(done) == list(range(workers))
        store = DecisionStore(tmp_path)
        view = store.load(("stress",))
        assert store.stats()["corrupt_shards"] == 0
        assert len(view) >= 5  # at least one whole merge survived
        for key in view.keys():
            worker, round_index, offset = key
            row = view.get(key)
            assert row[1] == worker + 1  # never torn or cross-writer garbage
            assert row[2:15] == [float(round_index)] * 13
        complete_final_rounds = [
            worker
            for worker in range(workers)
            if all((worker, rounds - 1, offset) in view for offset in range(5))
        ]
        assert complete_final_rounds  # the last os.replace is someone's final merge

    def test_interleaved_thread_writers_preserve_every_key(self, tmp_path):
        import threading

        store = DecisionStore(tmp_path)
        key = ("threads",)

        def write(worker):
            for i in range(20):
                store.put_many(
                    key, {(worker, i, 0): [1, 1] + [float(worker)] * 13 + [None]}
                )

        threads = [threading.Thread(target=write, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        view = DecisionStore(tmp_path).load(key)
        assert len(view) == 80  # one lock, no lost updates

    def test_store_pickles_into_pool_workers(self, tmp_path):
        """The store object itself crosses process boundaries (sweeps ship
        backend+store to workers), reopening the same directory."""
        store = DecisionStore(tmp_path)
        store.put_many(("p",), {(1, 1, 1): [1, 1] + [0.0] * 13 + [None]})
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get(("p",), 1, 1, 1) is not None


class TestWarmEqualsCold:
    """Acceptance: warm-store sweeps equal cold runs bit-for-bit."""

    WORKLOAD = [
        GemmShape(m=20, n=33, t=6),
        GemmShape(m=24, n=40, t=300),
        GemmShape(m=64, n=64, t=64),
    ]

    def test_batched_warm_equals_cold_and_reference(self, tmp_path):
        config = ArrayFlexConfig(rows=16, cols=16)
        reference = AnalyticalBackend().schedule_model(self.WORKLOAD, config)
        cold = BatchedCachedBackend(store=DecisionStore(tmp_path))
        assert cold.schedule_model(self.WORKLOAD, config).layers == reference.layers
        warm = BatchedCachedBackend(store=DecisionStore(tmp_path))
        assert warm.schedule_model(self.WORKLOAD, config).layers == reference.layers
        assert warm.cache_info()["misses"] == 0

    def test_sampled_warm_equals_cold_with_error_bounds(self, tmp_path):
        config = ArrayFlexConfig(rows=16, cols=16)
        cold = SampledSimBackend(store=DecisionStore(tmp_path), sample_fraction=0.25)
        reference = cold.schedule_model(self.WORKLOAD, config)
        assert any(layer.error_bound is not None for layer in reference.layers)
        warm = SampledSimBackend(store=DecisionStore(tmp_path), sample_fraction=0.25)
        schedule = warm.schedule_model(self.WORKLOAD, config)
        assert schedule.layers == reference.layers  # error_bound included
        assert warm.cache_info()["misses"] == 0
        assert warm.cache_info()["store_hits"] > 0
