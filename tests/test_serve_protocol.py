"""Tests for the serve protocol, error hierarchy and deprecation surface."""

import json
import warnings

import pytest

import repro.serve
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import resnet34
from repro.serve import (
    PROTOCOL_VERSION,
    AdmissionRejected,
    InvalidRequest,
    RateLimited,
    Request,
    RequestTimeout,
    Response,
    SchedulingService,
    ServeError,
    request_from_wire,
    request_to_wire,
    response_to_wire,
)
from repro.serve.protocol import config_from_wire, config_to_wire, result_to_wire


@pytest.fixture(scope="module")
def config():
    return ArrayFlexConfig.paper_128x128()


class TestKeywordOnlyConstructors:
    """Protocol constructors are keyword-only: versioned shapes must not
    re-mean positional call sites when fields are added."""

    def test_request_rejects_positional_arguments(self, config):
        with pytest.raises(TypeError):
            Request(resnet34(), config)

    def test_response_rejects_positional_arguments(self):
        with pytest.raises(TypeError):
            Response("ok", "ResNet-34")

    def test_keyword_construction_works(self, config):
        request = Request(model="resnet34", config=config, totals_only=True)
        assert request.totals_only is True
        response = Response(status="ok", model_name="x")
        assert response.ok


class TestRequestValidation:
    def test_nonpositive_timeout_rejected(self, config):
        with pytest.raises(InvalidRequest):
            Request(model="resnet34", config=config, timeout=0)

    def test_non_config_rejected(self):
        with pytest.raises(InvalidRequest):
            Request(model="resnet34", config={"rows": 128})

    def test_bad_response_status_rejected(self):
        with pytest.raises(InvalidRequest):
            Response(status="maybe", model_name="x")

    def test_paired_produces_both_sides(self, config):
        flex, conv = Request(model="resnet34", config=config).paired()
        assert flex.conventional is False
        assert conv.conventional is True


class TestWireCodecs:
    def test_registry_name_round_trips(self, config):
        request = Request(
            model="resnet34", config=config, totals_only=True, timeout=2.5
        )
        decoded = request_from_wire(json.loads(json.dumps(request_to_wire(request))))
        assert decoded == request

    def test_gemm_list_round_trips(self, config):
        gemms = (GemmShape(m=64, n=576, t=3136, name="conv1"),)
        request = Request(model=gemms, config=config)
        decoded = request_from_wire(request_to_wire(request))
        assert decoded.model == gemms

    def test_model_name_label_round_trips(self, config):
        gemms = (GemmShape(m=64, n=576, t=3136, name="conv1"),)
        request = Request(model=gemms, config=config, model_name="my-net")
        decoded = request_from_wire(request_to_wire(request))
        assert decoded == request
        assert decoded.model_name == "my-net"

    def test_config_round_trips(self):
        config = ArrayFlexConfig(
            rows=64, cols=32, supported_depths=(1, 2), activity_model="utilization"
        )
        decoded = config_from_wire(config_to_wire(config))
        assert decoded.rows == 64 and decoded.cols == 32
        assert decoded.supported_depths == (1, 2)
        assert decoded.activity_model.name == "utilization"

    def test_workload_object_has_no_wire_identity(self, config):
        with pytest.raises(InvalidRequest):
            request_to_wire(Request(model=resnet34(), config=config))

    @pytest.mark.parametrize(
        "payload",
        [
            42,
            {"model": "resnet34"},  # missing version
            {"v": 2, "model": "resnet34"},  # wrong version
            {"v": 1},  # missing model
            {"v": 1, "model": ""},
            {"v": 1, "model": "resnet34", "converntional": True},  # typo field
            {"v": 1, "model": "resnet34", "conventional": "yes"},
            {"v": 1, "model": "resnet34", "timeout": "fast"},
            {"v": 1, "model": "resnet34", "model_name": 7},
            {"v": 1, "model": [[64, 576]]},  # short GEMM entry
            {"v": 1, "model": [[64, 0, 9]]},  # illegal dimension
            {"v": 1, "model": "resnet34", "config": {"rows": 128, "colz": 4}},
        ],
    )
    def test_malformed_wire_requests_rejected(self, payload):
        with pytest.raises(InvalidRequest):
            request_from_wire(payload)

    def test_result_floats_survive_json_bit_exactly(self, config):
        """JSON round-trips the aggregate floats exactly — the basis of
        the daemon's bit-identical parity with direct library calls."""
        with SchedulingService() as service:
            response = service.submit(Request(model="resnet34", config=config))
        wire = json.loads(json.dumps(response_to_wire(response)))
        schedule = response.unwrap()
        assert wire["result"]["time_ns"] == schedule.total_time_ns
        assert wire["result"]["energy_nj"] == schedule.total_energy_nj
        assert wire["result"]["average_power_mw"] == schedule.average_power_mw
        assert wire["result"]["kind"] == "schedule"
        assert wire["result"]["depth_histogram"] == {
            str(depth): count
            for depth, count in schedule.depth_histogram().items()
        }

    def test_totals_result_to_wire(self, config):
        with SchedulingService() as service:
            response = service.submit(
                Request(model="resnet34", config=config, totals_only=True)
            )
        wire = result_to_wire(response.unwrap())
        assert wire["kind"] == "totals"
        assert wire["time_ns"] == response.unwrap().time_ns
        # Exact backends carry no estimate bound, and the legacy wire
        # shape stays exactly as it was.
        assert "error_bound" not in wire

    def test_totals_error_bound_rides_the_wire_when_present(self, config):
        from repro.backends import SampledSimBackend
        from repro.serve import SchedulingService as Service

        with Service(backend=SampledSimBackend()) as service:
            response = service.submit(
                Request(model="resnet34", config=config, totals_only=True)
            )
        totals = response.unwrap()
        wire = json.loads(json.dumps(result_to_wire(totals)))
        if totals.error_bound:
            assert wire["error_bound"] == totals.error_bound
        else:
            assert "error_bound" not in wire

    def test_timeout_response_to_wire(self):
        wire = response_to_wire(
            Response(status="timeout", model_name="x", timeout_s=0.5, cancelled=True)
        )
        assert wire["status"] == "timeout"
        assert wire["result"] is None
        assert wire["timeout_s"] == 0.5 and wire["cancelled"] is True


class TestErrorHierarchy:
    """Each serve error carries a distinct wire code, HTTP status and CLI
    exit code (the satellite's triple identity)."""

    ERRORS = (InvalidRequest, AdmissionRejected, RateLimited, RequestTimeout)

    def test_every_error_is_a_serve_error(self):
        for cls in self.ERRORS:
            assert issubclass(cls, ServeError)

    def test_statuses_and_exit_codes_are_distinct(self):
        assert len({cls.http_status for cls in self.ERRORS}) == len(self.ERRORS)
        assert len({cls.exit_code for cls in self.ERRORS}) == len(self.ERRORS)
        assert len({cls.code for cls in self.ERRORS}) == len(self.ERRORS)

    def test_documented_mapping(self):
        assert (InvalidRequest.http_status, InvalidRequest.exit_code) == (400, 2)
        assert (AdmissionRejected.http_status, AdmissionRejected.exit_code) == (429, 3)
        assert (RateLimited.http_status, RateLimited.exit_code) == (503, 4)
        assert (RequestTimeout.http_status, RequestTimeout.exit_code) == (504, 5)

    def test_invalid_request_is_a_value_error(self):
        """Pre-daemon call sites catching ValueError keep working."""
        assert issubclass(InvalidRequest, ValueError)
        with pytest.raises(ValueError):
            raise InvalidRequest("nope")

    def test_retry_after_carried(self):
        assert AdmissionRejected().retry_after_s == 1.0
        assert RateLimited(retry_after_s=2.5).retry_after_s == 2.5
        assert ServeError("boom").retry_after_s is None


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.serve.__all__:
            assert hasattr(repro.serve, name), name

    def test_new_surface_is_exported(self):
        exported = set(repro.serve.__all__)
        assert {
            "PROTOCOL_VERSION",
            "Request",
            "Response",
            "SchedulingService",
            "SchedulerDaemon",
            "DaemonClient",
            "ServeError",
            "InvalidRequest",
            "AdmissionRejected",
            "RateLimited",
            "RequestTimeout",
        } <= exported

    def test_deprecated_names_still_importable(self):
        assert repro.serve.ScheduleRequest is Request
        assert "TimedOutRequest" in repro.serve.__all__


class TestDeprecatedAliases:
    @pytest.fixture(autouse=True)
    def _reset_warned(self, monkeypatch):
        from repro.serve import service as service_module

        monkeypatch.setattr(service_module, "_WARNED_ALIASES", set())

    def test_alias_warns_exactly_once(self, config):
        """The one-shot warning: first call warns, the rest stay quiet."""
        with SchedulingService() as service:
            with pytest.warns(DeprecationWarning, match="schedule_many"):
                service.schedule_many([("resnet34", config)])
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                service.schedule_many([("resnet34", config)])  # silent now

    @pytest.mark.parametrize(
        "alias", ["schedule_many", "schedule_all", "schedule_suite", "compare_many"]
    )
    def test_each_alias_warns_with_migration_pointer(self, alias, config):
        with SchedulingService() as service:
            with pytest.warns(DeprecationWarning, match="serve-api-migration"):
                if alias == "schedule_suite":
                    service.schedule_suite("transformers", config)
                elif alias == "compare_many":
                    service.compare_many([("resnet34", config)])
                else:
                    getattr(service, alias)([("resnet34", config)])

    def test_new_api_never_warns(self, config):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with SchedulingService() as service:
                service.submit(Request(model="resnet34", config=config))
                service.submit_many([("resnet34", config)])
                service.compare([("resnet34", config)])
