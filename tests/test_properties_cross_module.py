"""Cross-module property-based tests.

These hypothesis tests pin down the invariants that tie the reproduction's
layers together, over randomly drawn configurations and workloads rather
than hand-picked examples:

* the closed-form latency model always agrees with the structural dataflow
  schedule and with the cycle-accurate simulator;
* Eq. (6) mode selection is consistent (never beaten by another supported
  mode) and degrades gracefully to the conventional design;
* power and energy accounting is internally consistent (energy = power x
  time, EDP = energy x time) for any schedule;
* the conv -> GEMM lowering conserves multiply-accumulate work.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.dataflow import WeightStationaryDataflow
from repro.core.config import ArrayFlexConfig
from repro.core.latency import arrayflex_tile_cycles, arrayflex_total_cycles, tile_count
from repro.core.optimizer import PipelineOptimizer
from repro.core.scheduler import Scheduler
from repro.nn.gemm_mapping import GemmShape, layer_to_gemm
from repro.nn.layers import Conv2dLayer
from repro.nn.workloads import random_int_matrices
from repro.sim.systolic_sim import CycleAccurateSystolicArray


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
array_dims = st.sampled_from([(4, 4), (8, 8), (16, 16), (8, 16), (16, 8)])
supported_k = st.sampled_from([1, 2, 4])
gemm_shapes = st.builds(
    GemmShape,
    m=st.integers(1, 2048),
    n=st.integers(1, 2048),
    t=st.integers(1, 4096),
)


class TestLatencyInvariants:
    @given(array_dims, supported_k, st.integers(1, 200))
    def test_dataflow_schedule_equals_closed_form(self, dims, k, t_rows):
        rows, cols = dims
        dataflow = WeightStationaryDataflow(rows, cols, k)
        assert dataflow.tile_latency_cycles(t_rows) == arrayflex_tile_cycles(
            rows, cols, t_rows, k
        )

    @given(gemm_shapes, array_dims, supported_k)
    def test_tiled_cycles_scale_linearly_with_tile_count(self, gemm, dims, k):
        rows, cols = dims
        tiles = tile_count(gemm.n, gemm.m, rows, cols)
        assert arrayflex_total_cycles(gemm, rows, cols, k) == tiles * arrayflex_tile_cycles(
            rows, cols, gemm.t, k
        )

    @settings(max_examples=15, deadline=None)
    @given(array_dims, supported_k, st.integers(1, 10), st.integers(0, 10_000))
    def test_simulator_is_cycle_and_bit_exact(self, dims, k, t_rows, seed):
        rows, cols = dims
        if rows % k or cols % k:
            pytest.skip("depth does not divide this array")
        a_tile, b_tile = random_int_matrices(t_rows, rows, cols, seed=seed)
        result = CycleAccurateSystolicArray(rows, cols, collapse_depth=k).simulate_tile(
            a_tile, b_tile
        )
        assert np.array_equal(result.output, a_tile @ b_tile)
        assert result.total_cycles == arrayflex_tile_cycles(rows, cols, t_rows, k)


class TestOptimizerInvariants:
    @settings(max_examples=60)
    @given(gemm_shapes)
    def test_selected_mode_is_pareto_consistent(self, gemm):
        optimizer = PipelineOptimizer(ArrayFlexConfig(rows=128, cols=128))
        decision = optimizer.best_depth(gemm)
        assert decision.collapse_depth in (1, 2, 4)
        assert min(decision.per_depth_time_ns.values()) == pytest.approx(
            decision.execution_time_ns
        )

    @settings(max_examples=60)
    @given(gemm_shapes)
    def test_arrayflex_cycles_never_exceed_conventional(self, gemm):
        config = ArrayFlexConfig(rows=128, cols=128)
        scheduler = Scheduler(config)
        arrayflex = scheduler.schedule_gemm_arrayflex(1, gemm)
        conventional = scheduler.schedule_gemm_conventional(1, gemm)
        assert arrayflex.cycles <= conventional.cycles

    @settings(max_examples=60)
    @given(gemm_shapes)
    def test_arrayflex_time_never_worse_than_its_normal_mode(self, gemm):
        """Adaptive mode selection can lose to the 2 GHz conventional design on
        large-T layers, but it can never lose to ArrayFlex pinned at k = 1."""
        config = ArrayFlexConfig(rows=128, cols=128)
        scheduler = Scheduler(config)
        adaptive = scheduler.schedule_gemm_arrayflex(1, gemm)
        pinned_cycles = scheduler.latency.total_cycles(gemm, 1)
        pinned_time = scheduler.clock.execution_time_ns(pinned_cycles, 1)
        assert adaptive.execution_time_ns <= pinned_time + 1e-9

    @settings(max_examples=40)
    @given(gemm_shapes, st.sampled_from([64, 128, 256]))
    def test_analytical_depth_positive_and_finite(self, gemm, size):
        optimizer = PipelineOptimizer(ArrayFlexConfig(rows=size, cols=size))
        k_hat = optimizer.analytical_optimal_depth(gemm)
        assert 0.0 < k_hat < 100.0


class TestEnergyInvariants:
    @settings(max_examples=30)
    @given(st.lists(gemm_shapes, min_size=1, max_size=8))
    def test_schedule_energy_identities(self, gemms):
        scheduler = Scheduler(ArrayFlexConfig(rows=128, cols=128))
        schedule = scheduler.schedule_model_arrayflex(list(gemms), model_name="random")
        assert schedule.total_energy_nj == pytest.approx(
            sum(l.energy_nj for l in schedule.layers)
        )
        assert schedule.energy_delay_product == pytest.approx(
            schedule.total_energy_nj * schedule.total_time_ns
        )
        assert schedule.average_power_mw == pytest.approx(
            schedule.total_energy_nj * 1e3 / schedule.total_time_ns
        )
        shares = schedule.time_share_by_depth()
        assert sum(shares.values()) == pytest.approx(1.0)

    @settings(max_examples=30)
    @given(st.lists(gemm_shapes, min_size=1, max_size=6))
    def test_power_bounded_by_mode_extremes(self, gemms):
        """The run-average ArrayFlex power always lies between the cheapest and
        the most expensive per-mode power."""
        config = ArrayFlexConfig(rows=128, cols=128)
        scheduler = Scheduler(config)
        schedule = scheduler.schedule_model_arrayflex(list(gemms), model_name="random")
        mode_powers = [
            scheduler.energy.arrayflex_power_mw(k, scheduler.clock.frequency_ghz(k))
            for k in config.sorted_depths()
        ]
        assert min(mode_powers) - 1e-6 <= schedule.average_power_mw <= max(mode_powers) + 1e-6


class TestLoweringInvariants:
    @settings(max_examples=40)
    @given(
        st.integers(1, 64),
        st.integers(1, 64),
        st.sampled_from([1, 3, 5]),
        st.sampled_from([1, 2]),
        st.sampled_from([8, 14, 28]),
    )
    def test_dense_conv_lowering_conserves_macs(self, cin, cout, kernel, stride, size):
        layer = Conv2dLayer(
            name="p",
            in_channels=cin,
            out_channels=cout,
            kernel_size=kernel,
            stride=stride,
            padding=kernel // 2,
            input_height=size,
            input_width=size,
        )
        assert layer_to_gemm(layer).macs == layer.macs
