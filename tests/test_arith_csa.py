"""Tests for the 3:2 carry-save adder and carry-save accumulation chains."""

import pytest
from hypothesis import given, strategies as st

from repro.arith.csa import (
    CarrySaveState,
    carry_save_accumulate,
    carry_save_add,
    carry_save_chain_gate_count,
    carry_save_resolve,
    csa_gate_count,
    csa_logic_depth,
)
from repro.arith.fixed_point import int_to_bits, wrap_to_width


class TestCarrySaveState:
    def test_zero_state(self):
        state = CarrySaveState.zero(16)
        assert state.value == 0
        assert state.width == 16

    def test_from_int(self):
        state = CarrySaveState.from_int(-42, 16)
        assert state.value == -42

    def test_from_int_wraps(self):
        state = CarrySaveState.from_int(1 << 20, 16)
        assert state.value == wrap_to_width(1 << 20, 16)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            CarrySaveState.zero(0)


class TestCarrySaveAdd:
    def test_three_small_numbers(self):
        state = carry_save_add(
            int_to_bits(3, 16), int_to_bits(4, 16), int_to_bits(5, 16)
        )
        assert state.value == 12

    def test_negative_numbers(self):
        state = carry_save_add(
            int_to_bits(-3, 16), int_to_bits(-4, 16), int_to_bits(5, 16)
        )
        assert state.value == -2

    def test_redundancy_no_carry_propagation(self):
        """A CSA never propagates carries horizontally: each output bit depends
        only on the three input bits of the same position."""
        a, b, c = int_to_bits(0b0101, 8), int_to_bits(0b0011, 8), int_to_bits(0b0110, 8)
        state = carry_save_add(a, b, c)
        for i in range(8):
            expected_sum_bit = a[i] ^ b[i] ^ c[i]
            assert state.sum_bits[i] == expected_sum_bit

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            carry_save_add([], [], [], width=0)

    @given(
        st.integers(-(2**30), 2**30),
        st.integers(-(2**30), 2**30),
        st.integers(-(2**30), 2**30),
    )
    def test_value_equals_sum(self, a, b, c):
        state = carry_save_add(
            int_to_bits(a, 64), int_to_bits(b, 64), int_to_bits(c, 64)
        )
        assert state.value == a + b + c


class TestCarrySaveAccumulate:
    def test_empty_addend_list(self):
        state = carry_save_accumulate([], width=32)
        assert state.value == 0

    def test_single_addend(self):
        state = carry_save_accumulate([7], width=32)
        assert state.value == 7

    def test_with_initial_state(self):
        initial = CarrySaveState.from_int(100, 32)
        state = carry_save_accumulate([1, 2, 3], width=32, initial=initial)
        assert state.value == 106

    def test_initial_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            carry_save_accumulate([1], width=32, initial=CarrySaveState.zero(16))

    @given(st.lists(st.integers(-(2**20), 2**20), min_size=0, max_size=32))
    def test_accumulation_matches_python_sum(self, addends):
        state = carry_save_accumulate(addends, width=64)
        assert state.value == wrap_to_width(sum(addends), 64)

    @given(st.lists(st.integers(-(2**20), 2**20), min_size=1, max_size=16))
    def test_resolution_matches_value(self, addends):
        """The final CPA resolution equals the redundant pair's value -- the
        exact property the collapsed PE group relies on (paper Fig. 4b)."""
        state = carry_save_accumulate(addends, width=64)
        assert carry_save_resolve(state) == state.value


class TestCostModels:
    def test_csa_gate_count_linear(self):
        assert csa_gate_count(64) == 2 * csa_gate_count(32)

    def test_chain_gate_count_includes_final_cpa(self):
        assert carry_save_chain_gate_count(64, stages=0) == 5 * 64
        assert (
            carry_save_chain_gate_count(64, stages=4)
            == 4 * csa_gate_count(64) + 5 * 64
        )

    def test_chain_negative_stages_rejected(self):
        with pytest.raises(ValueError):
            carry_save_chain_gate_count(64, stages=-1)

    def test_csa_depth_is_width_independent(self):
        """The key property exploited by Eq. (5): CSA depth does not scale
        with operand width."""
        assert csa_logic_depth() == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            csa_gate_count(0)
