"""Tests for the two's-complement fixed-point helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arith.fixed_point import (
    accumulator_range,
    bits_to_int,
    int_to_bits,
    product_width,
    quantize_symmetric,
    sign_extend,
    wrap_to_width,
)


class TestWrapToWidth:
    def test_positive_in_range(self):
        assert wrap_to_width(5, 8) == 5

    def test_negative_in_range(self):
        assert wrap_to_width(-5, 8) == -5

    def test_positive_overflow_wraps_negative(self):
        assert wrap_to_width(128, 8) == -128

    def test_negative_overflow_wraps_positive(self):
        assert wrap_to_width(-129, 8) == 127

    def test_full_period_wrap(self):
        assert wrap_to_width(256, 8) == 0

    def test_width_one(self):
        assert wrap_to_width(1, 1) == -1
        assert wrap_to_width(0, 1) == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            wrap_to_width(1, 0)

    @given(st.integers(min_value=-(2**70), max_value=2**70), st.integers(1, 64))
    def test_wrap_is_idempotent(self, value, width):
        wrapped = wrap_to_width(value, width)
        assert wrap_to_width(wrapped, width) == wrapped

    @given(st.integers(min_value=-(2**70), max_value=2**70), st.integers(1, 64))
    def test_wrap_congruent_mod_2_width(self, value, width):
        wrapped = wrap_to_width(value, width)
        assert (wrapped - value) % (1 << width) == 0

    @given(st.integers(min_value=-(2**70), max_value=2**70), st.integers(1, 64))
    def test_wrap_in_range(self, value, width):
        wrapped = wrap_to_width(value, width)
        assert -(1 << (width - 1)) <= wrapped <= (1 << (width - 1)) - 1


class TestIntBitsRoundTrip:
    def test_encode_positive(self):
        assert int_to_bits(5, 4) == [1, 0, 1, 0]

    def test_encode_negative_one(self):
        assert int_to_bits(-1, 4) == [1, 1, 1, 1]

    def test_encode_min_value(self):
        assert int_to_bits(-8, 4) == [0, 0, 0, 1]

    def test_decode_positive(self):
        assert bits_to_int([1, 0, 1, 0]) == 5

    def test_decode_negative(self):
        assert bits_to_int([0, 0, 0, 1]) == -8

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 4)
        with pytest.raises(ValueError):
            int_to_bits(-9, 4)

    def test_empty_bits_raises(self):
        with pytest.raises(ValueError):
            bits_to_int([])

    def test_non_binary_bits_raise(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    @given(st.integers(1, 64), st.data())
    def test_round_trip(self, width, data):
        low, high = -(1 << (width - 1)), (1 << (width - 1)) - 1
        value = data.draw(st.integers(low, high))
        assert bits_to_int(int_to_bits(value, width)) == value


class TestSignExtend:
    def test_extend_negative(self):
        assert sign_extend([1, 1], 4) == [1, 1, 1, 1]

    def test_extend_positive(self):
        assert sign_extend([1, 0], 4) == [1, 0, 0, 0]

    def test_no_op_same_width(self):
        assert sign_extend([0, 1], 2) == [0, 1]

    def test_shrinking_raises(self):
        with pytest.raises(ValueError):
            sign_extend([1, 0, 1], 2)

    @given(st.integers(1, 32), st.integers(33, 64), st.data())
    def test_extension_preserves_value(self, width, wider, data):
        value = data.draw(
            st.integers(-(1 << (width - 1)), (1 << (width - 1)) - 1)
        )
        bits = int_to_bits(value, width)
        assert bits_to_int(sign_extend(bits, wider)) == value


class TestQuantize:
    def test_all_zero_input(self):
        q, scale = quantize_symmetric(np.zeros((3, 3)), width=8)
        assert scale == 1.0
        assert np.all(q == 0)

    def test_range_respected(self):
        values = np.linspace(-1.0, 1.0, 101)
        q, _ = quantize_symmetric(values, width=8)
        assert q.max() <= 127
        assert q.min() >= -128

    def test_reconstruction_error_small(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        q, scale = quantize_symmetric(values, width=16)
        error = np.abs(values - q * scale).max()
        assert error <= scale  # at most one quantization step

    def test_scale_positive(self):
        q, scale = quantize_symmetric(np.array([3.0, -1.0]), width=8)
        assert scale > 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.array([1.0]), width=0)


class TestDerivedWidths:
    def test_product_width_doubles(self):
        assert product_width(32) == 64
        assert product_width(8) == 16

    def test_product_width_invalid(self):
        with pytest.raises(ValueError):
            product_width(0)

    def test_accumulator_range_64(self):
        low, high = accumulator_range(64)
        assert low == -(1 << 63)
        assert high == (1 << 63) - 1

    def test_accumulator_range_symmetry(self):
        low, high = accumulator_range(16)
        assert low == -high - 1
