"""Tests for the sweep utilities."""

import pytest

from repro.core.config import ArrayFlexConfig
from repro.eval.sweep import array_size_sweep, collapse_depth_sweep
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import mobilenet_v1, resnet34


class TestCollapseDepthSweep:
    def test_supported_depths_by_default(self):
        config = ArrayFlexConfig(rows=128, cols=128)
        points = collapse_depth_sweep(GemmShape(m=256, n=2304, t=196), config)
        assert [p.collapse_depth for p in points] == [1, 2, 4]

    def test_explicit_depths_including_unsupported(self):
        """Fig. 5 evaluates k = 3 even though the shipped design omits it."""
        config = ArrayFlexConfig.fig5_132x132()
        points = collapse_depth_sweep(
            GemmShape(m=256, n=2304, t=196), config, depths=(1, 2, 3, 4)
        )
        assert [p.collapse_depth for p in points] == [1, 2, 3, 4]
        k3 = points[2]
        assert k3.clock_frequency_ghz == pytest.approx(1.5)

    def test_cycles_decrease_with_depth(self):
        config = ArrayFlexConfig(rows=128, cols=128)
        points = collapse_depth_sweep(GemmShape(m=512, n=2304, t=49), config)
        cycles = [p.cycles for p in points]
        assert cycles == sorted(cycles, reverse=True)

    def test_illegal_depth_rejected(self):
        config = ArrayFlexConfig(rows=128, cols=128)
        with pytest.raises(ValueError):
            collapse_depth_sweep(GemmShape(m=1, n=1, t=1), config, depths=(3,))

    def test_time_consistency(self):
        config = ArrayFlexConfig(rows=128, cols=128)
        for point in collapse_depth_sweep(GemmShape(m=256, n=2304, t=196), config):
            expected_us = point.cycles / point.clock_frequency_ghz / 1000.0
            assert point.execution_time_us == pytest.approx(expected_us, rel=1e-6)


class TestArraySizeSweep:
    def test_sweep_covers_models_and_sizes(self):
        points = array_size_sweep([resnet34(), mobilenet_v1()], sizes=[(64, 64), (128, 128)])
        assert len(points) == 4
        assert {(p.rows, p.cols) for p in points} == {(64, 64), (128, 128)}

    def test_savings_are_fractions(self):
        points = array_size_sweep([resnet34()], sizes=[(128, 128)])
        point = points[0]
        assert 0.0 < point.latency_saving < 1.0
        assert 0.0 < point.power_saving < 1.0
        assert point.edp_gain > 1.0

    def test_arrayflex_time_below_conventional(self):
        for point in array_size_sweep([mobilenet_v1()], sizes=[(128, 128), (256, 256)]):
            assert point.arrayflex_time_ms < point.conventional_time_ms
