"""Tests of the declarative ablation/importance harness.

Covers the four pillars the harness promises:

* run-set generation is a pure, validated function of the declaration
  (baseline plus one-off, optional pairwise grid, stable run ids);
* execution fans out through :class:`~repro.serve.SchedulingService`
  with results identical to direct backend calls, under either executor
  kind and any submission order (determinism), and without tripping the
  deprecated serve aliases (``-W error::DeprecationWarning`` clean);
* importance/significance math: per-component deltas, error-bound-aware
  significance, EDP's doubled bound weight;
* ``ModelTotals.error_bound`` aggregation when a run mixes sampled and
  exact strata — the generic schedule path, the sampled fast path and
  the run-level aggregate must all report the same time-weighted bound.
"""

import json
import warnings

import pytest

from repro.backends import ModelTotals, SampledSimBackend
from repro.backends.base import ExecutionBackend
from repro.core.config import ArrayFlexConfig
from repro.eval.ablation import (
    METRICS,
    AblationStudy,
    Component,
    RunResult,
    RunSpec,
    WorkloadRun,
    _delta,
    default_study,
    format_value,
)
from repro.nn.gemm_mapping import GemmShape


def tiny_study(**overrides) -> AblationStudy:
    """A fast two-component study over one small workload."""
    kwargs = dict(
        components=[
            Component("activity_model", "constant", ("utilization",)),
            Component("geometry", (16, 16), ((32, 32),)),
        ],
        fixed={"workloads": ("mobilenet_v1",), "depths": (1, 2, 4)},
    )
    kwargs.update(overrides)
    return AblationStudy(**kwargs)


class TestDeclaration:
    def test_run_set_is_baseline_plus_one_off(self):
        study = tiny_study()
        ids = [spec.run_id for spec in study.generate_runs()]
        assert ids == [
            "baseline",
            "activity_model=utilization",
            "geometry=32x32",
        ]

    def test_pairwise_adds_the_cross_grid(self):
        study = tiny_study(pairwise=True)
        ids = [spec.run_id for spec in study.generate_runs()]
        assert ids == [
            "baseline",
            "activity_model=utilization",
            "geometry=32x32",
            "activity_model=utilization|geometry=32x32",
        ]

    def test_one_run_per_alternative(self):
        study = AblationStudy(
            components=[Component("depths", (1, 2, 4), ((1, 2), (1, 4)))],
        )
        ids = [spec.run_id for spec in study.generate_runs()]
        assert ids == ["baseline", "depths=1+2", "depths=1+4"]

    def test_settings_for_overrides_only_the_flipped_knob(self):
        study = tiny_study()
        specs = study.generate_runs()
        baseline = study.settings_for(specs[0])
        flipped = study.settings_for(specs[2])
        assert baseline["geometry"] == (16, 16)
        assert flipped["geometry"] == (32, 32)
        assert flipped["activity_model"] == baseline["activity_model"]

    def test_string_spellings_normalised(self):
        component = Component("geometry", "16x16", ("32x32",))
        assert component.baseline == (16, 16)
        assert component.alternatives == ((32, 32),)
        depths = Component("depths", "1+2+4", ("1+2",))
        assert depths.baseline == (1, 2, 4)
        assert format_value("depths", depths.alternatives[0]) == "1+2"

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown ablation knob"):
            Component("voltage", 1.0, (0.9,))

    def test_component_needs_alternatives(self):
        with pytest.raises(ValueError, match="at least one alternative"):
            Component("batch", 1, ())

    def test_baseline_cannot_be_an_alternative(self):
        with pytest.raises(ValueError, match="baseline as an alternative"):
            Component("batch", 1, (2, 1))

    def test_duplicate_component_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate component names"):
            AblationStudy(
                components=[
                    Component("batch", 1, (2,)),
                    Component("batch", 1, (4,)),
                ]
            )

    def test_fixed_and_ablated_knob_collision_rejected(self):
        with pytest.raises(ValueError, match="both fixed and ablated"):
            AblationStudy(
                components=[Component("batch", 1, (2,))],
                fixed={"batch": 8},
            )

    def test_unknown_metric_and_executor_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            tiny_study(metric="throughput")
        with pytest.raises(ValueError, match="executor"):
            tiny_study(executor="fleet")

    def test_sampling_knob_requires_sampled_backend(self):
        study = AblationStudy(
            components=[Component("sample_seed", 0, (1,))],
            fixed={"workloads": ("mobilenet_v1",), "backend": "batched"},
        )
        with pytest.raises(ValueError, match="requires the 'sampled' backend"):
            study.run()


class TestExecution:
    @pytest.fixture(scope="class")
    def outcome(self):
        return tiny_study().run()

    def test_metrics_match_direct_backend_totals(self, outcome):
        from repro.backends import create_backend, model_totals

        backend = create_backend("batched")
        for geometry, run_id in (((16, 16), "baseline"), ((32, 32), "geometry=32x32")):
            config = ArrayFlexConfig(
                rows=geometry[0], cols=geometry[1], activity_model="constant"
            )
            direct = model_totals(backend, "mobilenet_v1", config)
            run = outcome.run(run_id)
            assert run.time_ns == direct.time_ns
            assert run.energy_nj == direct.energy_nj
            assert run.metric("edp") == direct.energy_nj * direct.time_ns

    def test_ranking_is_sorted_and_ranked(self, outcome):
        scores = [entry.score for entry in outcome.ranking]
        assert scores == sorted(scores, reverse=True)
        assert [entry.rank for entry in outcome.ranking] == [1, 2]

    def test_exact_backend_deltas_are_significant(self, outcome):
        # Zero sampling noise: any nonzero delta clears the zero-width bound.
        entry = next(e for e in outcome.ranking if e.component == "geometry")
        assert entry.score > 0.0
        assert entry.significant("edp")

    def test_render_mentions_every_run_and_component(self, outcome):
        text = outcome.render()
        assert "Component importance" in text
        assert "activity_model=utilization" in text
        assert "geometry=32x32" in text

    def test_to_json_is_serialisable_and_complete(self, outcome):
        payload = json.loads(json.dumps(outcome.to_json(), sort_keys=True))
        assert payload["metric"] == "edp"
        assert payload["baseline"]["run_id"] == "baseline"
        assert {run["run_id"] for run in payload["runs"]} == {
            "activity_model=utilization",
            "geometry=32x32",
        }
        assert {entry["component"] for entry in payload["ranking"]} == {
            "activity_model",
            "geometry",
        }

    def test_pairwise_interaction_reported(self):
        outcome = tiny_study(pairwise=True).run()
        pair = outcome.pairwise[0]
        assert pair.run_id == "activity_model=utilization|geometry=32x32"
        # interaction = combined delta - sum of one-off deltas
        combined = outcome.deltas[pair.run_id].deltas["edp"]
        parts = (
            outcome.deltas["activity_model=utilization"].deltas["edp"]
            + outcome.deltas["geometry=32x32"].deltas["edp"]
        )
        assert outcome.interaction(pair) == pytest.approx(combined - parts)
        assert "interaction" in outcome.render()

    def test_no_deprecated_alias_fires(self):
        """The fan-out must only speak the typed submit_many surface."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            tiny_study().run()


class TestDeterminism:
    def test_same_study_twice_is_identical(self):
        first = tiny_study().run().to_json()
        second = tiny_study().run().to_json()
        assert first == second

    def test_executor_kind_does_not_change_the_report(self):
        thread = tiny_study(executor="thread").run().to_json()
        process = tiny_study(executor="process").run().to_json()
        assert thread == process

    def test_submission_order_does_not_change_the_report(self):
        study = tiny_study(pairwise=True)
        canonical = study.run().to_json()
        ids = [spec.run_id for spec in study.generate_runs()]
        shuffled = study.run(order=list(reversed(ids))).to_json()
        assert canonical == shuffled

    def test_order_must_be_a_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            tiny_study().run(order=["baseline"])

    def test_sampled_study_reproduces_bit_identically(self):
        study = AblationStudy(
            components=[Component("sample_seed", 0, (3,))],
            fixed={
                "workloads": ("mobilenet_v1",),
                "geometry": (16, 16),
                "backend": "sampled",
                "sample_fraction": 0.25,
            },
        )
        assert study.run().to_json() == study.run().to_json()


class TestImportanceMath:
    def totals_run(self, run_id, time_ns, energy_nj, bound=None, overrides=()):
        return RunResult(
            spec=RunSpec(run_id=run_id, overrides=tuple(overrides)),
            settings={},
            workloads=[
                WorkloadRun(
                    name="w",
                    result=ModelTotals(
                        time_ns=time_ns, energy_nj=energy_nj, error_bound=bound
                    ),
                )
            ],
        )

    def test_deltas_are_relative_to_the_baseline(self):
        baseline = self.totals_run("baseline", 100.0, 50.0)
        run = self.totals_run("batch=2", 150.0, 40.0, overrides=[("batch", 2)])
        delta = _delta(baseline, run)
        assert delta.deltas["latency"] == pytest.approx(0.5)
        assert delta.deltas["energy"] == pytest.approx(-0.2)
        # EDP: (40*150)/(50*100) - 1 = 0.2
        assert delta.deltas["edp"] == pytest.approx(0.2)

    def test_exact_runs_have_zero_noise_and_significance(self):
        baseline = self.totals_run("baseline", 100.0, 50.0)
        same = self.totals_run("batch=2", 100.0, 50.0, overrides=[("batch", 2)])
        delta = _delta(baseline, same)
        assert all(delta.noise[m] == 0.0 for m in METRICS)
        assert not any(delta.significant[m] for m in METRICS)

    def test_delta_inside_the_error_bound_is_not_significant(self):
        baseline = self.totals_run("baseline", 100.0, 50.0, bound=0.05)
        run = self.totals_run(
            "sample_seed=1", 103.0, 51.5, bound=0.05, overrides=[("sample_seed", 1)]
        )
        delta = _delta(baseline, run)
        # 3% delta against a 10% combined bound: noise, not signal.
        assert delta.noise["latency"] == pytest.approx(0.1)
        assert not delta.significant["latency"]
        # EDP doubles the bound weight (time enters twice).
        assert delta.noise["edp"] == pytest.approx(0.2)
        assert not delta.significant["edp"]

    def test_delta_beyond_the_error_bound_is_significant(self):
        baseline = self.totals_run("baseline", 100.0, 50.0, bound=0.02)
        run = self.totals_run(
            "sample_seed=1", 130.0, 65.0, bound=0.02, overrides=[("sample_seed", 1)]
        )
        delta = _delta(baseline, run)
        assert delta.significant["latency"]
        assert delta.significant["energy"]

    def test_run_level_bound_mixes_exact_and_sampled_workloads(self):
        """An exact workload is a zero-width stratum at its time weight."""
        run = RunResult(
            spec=RunSpec(run_id="baseline"),
            settings={},
            workloads=[
                WorkloadRun(
                    name="exact",
                    result=ModelTotals(time_ns=100.0, energy_nj=1.0, error_bound=None),
                ),
                WorkloadRun(
                    name="sampled",
                    result=ModelTotals(time_ns=300.0, energy_nj=2.0, error_bound=0.04),
                ),
            ],
        )
        assert run.error_bound == pytest.approx(0.04 * 300.0 / 400.0)


class TestErrorBoundAggregation:
    """The zero-bound/nonzero-bound mixing regression (PR 9 follow-up)."""

    @pytest.fixture
    def noisy_backend(self, monkeypatch):
        """A sampled backend whose engine has one high-variance stratum.

        The real cycle engine is deterministic per tile shape, so bounds
        collapse to zero; injecting variance (same trick as the Neyman
        tests) makes one layer carry a genuinely nonzero bound while
        small layers stay exhaustive (zero bound) — the mixed run.
        """
        backend = SampledSimBackend(sample_fraction=0.1)

        def synthetic(config, depth, t_rows, items):
            return [
                1_000 * n + 10 * m + ((index % 5) * 40 if n == m == 16 else 0)
                for n, m, index in items
            ]

        monkeypatch.setattr(backend, "_simulate_batch", synthetic)
        return backend

    @pytest.fixture
    def mixed_model(self):
        return [
            GemmShape(m=6, n=7, t=9, name="tiny-exhaustive"),
            GemmShape(m=410, n=410, t=20, name="hetero-sampled"),
        ]

    def test_run_genuinely_mixes_zero_and_nonzero_bounds(
        self, noisy_backend, mixed_model
    ):
        config = ArrayFlexConfig(rows=16, cols=16)
        schedule = noisy_backend.schedule_model(mixed_model, config, model_name="mix")
        bounds = [layer.error_bound for layer in schedule.layers]
        assert bounds[0] == 0.0
        assert bounds[1] > 0.0

    def test_combined_bound_is_the_time_weighted_mean(
        self, noisy_backend, mixed_model
    ):
        config = ArrayFlexConfig(rows=16, cols=16)
        schedule = noisy_backend.schedule_model(mixed_model, config, model_name="mix")
        expected = sum(
            (layer.error_bound or 0.0) * layer.execution_time_ns
            for layer in schedule.layers
        ) / schedule.total_time_ns
        assert schedule.combined_error_bound() == pytest.approx(expected)
        assert 0.0 < schedule.combined_error_bound() < schedule.max_error_bound()

    def test_generic_and_fast_totals_paths_agree(self, noisy_backend, mixed_model):
        """The asymmetry fix: the generic schedule-then-sum path must
        carry the same combined bound as the sampled fast path."""
        config = ArrayFlexConfig(rows=16, cols=16)
        fast = noisy_backend.schedule_model_totals(mixed_model, config, model_name="mix")
        generic = ExecutionBackend.schedule_model_totals(
            noisy_backend, mixed_model, config, model_name="mix"
        )
        assert generic.time_ns == fast.time_ns
        assert generic.energy_nj == fast.energy_nj
        assert generic.error_bound == pytest.approx(fast.error_bound)
        assert fast.error_bound > 0.0

    def test_exact_backends_still_report_no_bound(self):
        config = ArrayFlexConfig(rows=16, cols=16)
        from repro.backends import create_backend, model_totals

        totals = model_totals(create_backend("analytical"), "mobilenet_v1", config)
        assert totals.error_bound is None

    def test_all_exact_layers_combine_to_none(self):
        from repro.backends import create_backend

        config = ArrayFlexConfig(rows=16, cols=16)
        schedule = create_backend("batched").schedule_model("mobilenet_v1", config)
        assert schedule.combined_error_bound() is None


class TestActivityRefactor:
    def test_engine_backed_run_matches_the_inline_loop_bit_for_bit(self):
        """The refactored ActivitySensitivityExperiment must reproduce the
        pre-engine hand-written loop exactly — same schedules, same
        division order, bit-identical rendered numbers."""
        from repro.core.activity import UtilizationActivity
        from repro.eval.experiments import (
            ActivitySensitivityEntry,
            ActivitySensitivityExperiment,
        )
        from repro.nn.models import mobilenet_v1
        from repro.backends import create_backend

        sizes = (16, 32)
        workloads = [mobilenet_v1()]
        experiment = ActivitySensitivityExperiment(sizes=sizes, workloads=workloads)
        engine_result = experiment.run()

        backend = create_backend(None, default="batched")
        entries = []
        for size in sizes:
            constant_config = ArrayFlexConfig(rows=size, cols=size)
            utilization_config = constant_config.with_activity_model(
                UtilizationActivity()
            )
            for workload in workloads:
                constant = backend.schedule_model(workload, constant_config)
                derated = backend.schedule_model(workload, utilization_config)
                constant_conv = backend.schedule_model_conventional(
                    workload, constant_config
                )
                derated_conv = backend.schedule_model_conventional(
                    workload, utilization_config
                )
                entries.append(
                    ActivitySensitivityEntry(
                        workload_name=constant.model_name,
                        rows=size,
                        cols=size,
                        average_utilization=derated.average_utilization(),
                        constant_energy_nj=constant.total_energy_nj,
                        utilization_energy_nj=derated.total_energy_nj,
                        constant_edp_gain=(
                            constant_conv.energy_delay_product
                            / constant.energy_delay_product
                        ),
                        utilization_edp_gain=(
                            derated_conv.energy_delay_product
                            / derated.energy_delay_product
                        ),
                    )
                )
        assert engine_result.entries == entries  # == on floats: bit-identical
        assert experiment.render(engine_result) == experiment.render(
            type(engine_result)(entries=entries)
        )


class TestDefaultStudy:
    def test_default_study_shape(self):
        study = default_study()
        assert [component.name for component in study.components] == [
            "activity_model",
            "geometry",
            "depths",
        ]
        assert len(study.generate_runs()) == 4

    def test_ablation_experiment_runs_and_renders(self):
        from repro.eval.experiments import AblationExperiment
        from repro.eval.ablation import AblationStudy

        experiment = AblationExperiment(
            study=AblationStudy(
                components=[Component("activity_model", "constant", ("utilization",))],
                fixed={"workloads": ("mobilenet_v1",), "geometry": (16, 16)},
            )
        )
        text = experiment.render()
        assert "Component importance" in text
        assert experiment.experiment_id == "ablation"
