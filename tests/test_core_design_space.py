"""Tests for the design-space exploration utility."""

import pytest

from repro.core.design_space import DesignPoint, DesignSpaceExplorer
from repro.nn.models import mobilenet_v1, resnet34


@pytest.fixture(scope="module")
def explorer():
    return DesignSpaceExplorer([resnet34(), mobilenet_v1()])


class TestDesignPoints:
    def test_label(self):
        point = DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4))
        assert point.label == "128x128 k={1,2,4}"

    def test_default_candidates_are_legal(self):
        for point in DesignSpaceExplorer.default_candidates():
            assert all(point.rows % depth == 0 for depth in point.supported_depths)

    def test_default_candidates_cover_paper_sizes(self):
        sizes = {(p.rows, p.cols) for p in DesignSpaceExplorer.default_candidates()}
        assert (128, 128) in sizes and (256, 256) in sizes


class TestEvaluation:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer([])

    def test_evaluate_point_metrics(self, explorer):
        result = explorer.evaluate_point(
            DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4))
        )
        assert 0.0 < result.latency_saving < 0.25
        assert 0.0 < result.power_saving < 0.30
        assert result.edp_gain > 1.0
        assert set(result.per_model_latency_saving) == {"ResNet-34", "MobileNetV1"}
        assert result.arrayflex_time_ms < result.conventional_time_ms

    def test_illegal_point_raises(self, explorer):
        with pytest.raises(ValueError):
            explorer.evaluate_point(DesignPoint(rows=100, cols=100, supported_depths=(1, 3)))

    def test_explore_preserves_order(self, explorer):
        points = [
            DesignPoint(rows=64, cols=64, supported_depths=(1, 2, 4)),
            DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4)),
        ]
        results = explorer.explore(points)
        assert [r.point for r in results] == points

    def test_explore_empty_rejected(self, explorer):
        with pytest.raises(ValueError):
            explorer.explore([])


class TestRanking:
    def test_rank_by_edp(self, explorer):
        points = [
            DesignPoint(rows=64, cols=64, supported_depths=(1, 2, 4)),
            DesignPoint(rows=128, cols=128, supported_depths=(1, 2)),
            DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4)),
        ]
        ranked = explorer.rank(points, objective="edp_gain")
        gains = [r.edp_gain for r in ranked]
        assert gains == sorted(gains, reverse=True)

    def test_restricting_modes_hurts(self, explorer):
        """Dropping the k = 4 mode can only reduce the savings."""
        full = explorer.evaluate_point(
            DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4))
        )
        restricted = explorer.evaluate_point(
            DesignPoint(rows=128, cols=128, supported_depths=(1, 2))
        )
        assert full.latency_saving >= restricted.latency_saving
        assert full.edp_gain >= restricted.edp_gain

    def test_invalid_objective(self, explorer):
        with pytest.raises(ValueError):
            explorer.rank([DesignPoint(rows=64, cols=64, supported_depths=(1, 2))], "speed")

    def test_paper_claim_larger_arrays_save_more(self, explorer):
        small = explorer.evaluate_point(
            DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4))
        )
        large = explorer.evaluate_point(
            DesignPoint(rows=256, cols=256, supported_depths=(1, 2, 4))
        )
        assert large.power_saving > small.power_saving


class TestRegistryWorkloads:
    def test_models_accept_registry_names(self):
        by_name = DesignSpaceExplorer(["resnet34", "mobilenet_v1"])
        by_object = DesignSpaceExplorer([resnet34(), mobilenet_v1()])
        point = DesignPoint(rows=64, cols=64, supported_depths=(1, 2, 4))
        assert by_name.evaluate_point(point) == by_object.evaluate_point(point)

    def test_from_suite_transformers(self):
        explorer = DesignSpaceExplorer.from_suite("transformers")
        assert [model.name for model in explorer.models] == [
            "BERT-Base", "GPT-2-decode", "ViT-B/16",
        ]
        point = DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4))
        result = explorer.evaluate_point(point)
        assert 0.0 < result.latency_saving < 1.0
        assert set(result.per_model_latency_saving) == {
            "BERT-Base", "GPT-2-decode", "ViT-B/16",
        }

    def test_from_suite_batch_scaling(self):
        explorer = DesignSpaceExplorer.from_suite("transformers", batch=4)
        assert all(model.name.endswith("@bs4") for model in explorer.models)

    def test_unknown_name_surfaces(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(["alexnet"])
