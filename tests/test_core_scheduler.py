"""Tests for the CNN scheduler."""

import pytest

from repro.core.config import ArrayFlexConfig
from repro.core.scheduler import Scheduler
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import convnext_tiny, resnet34


@pytest.fixture(scope="module")
def scheduler():
    return Scheduler(ArrayFlexConfig(rows=128, cols=128))


class TestSingleLayerScheduling:
    def test_arrayflex_layer_uses_optimal_mode(self, scheduler):
        layer = scheduler.schedule_gemm_arrayflex(1, GemmShape(m=512, n=4608, t=49))
        assert layer.collapse_depth == 4
        assert layer.clock_frequency_ghz == pytest.approx(1.4)

    def test_conventional_layer_always_k1_2ghz(self, scheduler):
        layer = scheduler.schedule_gemm_conventional(1, GemmShape(m=512, n=4608, t=49))
        assert layer.collapse_depth == 1
        assert layer.clock_frequency_ghz == pytest.approx(2.0)

    def test_energy_consistency(self, scheduler):
        layer = scheduler.schedule_gemm_arrayflex(1, GemmShape(m=256, n=2304, t=196))
        assert layer.energy_nj == pytest.approx(
            layer.power_mw * layer.execution_time_ns / 1000.0
        )

    def test_time_is_cycles_times_period(self, scheduler):
        layer = scheduler.schedule_gemm_conventional(1, GemmShape(m=128, n=128, t=128))
        assert layer.execution_time_ns == pytest.approx(layer.cycles * 0.5)


class TestModelScheduling:
    def test_schedule_covers_every_layer(self, scheduler):
        schedule = scheduler.schedule_model_arrayflex(resnet34())
        assert len(schedule.layers) == 34
        assert [layer.index for layer in schedule.layers] == list(range(1, 35))

    def test_model_name_and_accelerator_labels(self, scheduler):
        arrayflex = scheduler.schedule_model_arrayflex(resnet34())
        conventional = scheduler.schedule_model_conventional(resnet34())
        assert arrayflex.accelerator == "ArrayFlex"
        assert conventional.accelerator == "Conventional"
        assert arrayflex.model_name == "ResNet-34"

    def test_totals_are_sums(self, scheduler):
        schedule = scheduler.schedule_model_arrayflex(convnext_tiny())
        assert schedule.total_time_ns == pytest.approx(
            sum(layer.execution_time_ns for layer in schedule.layers)
        )
        assert schedule.total_cycles == sum(layer.cycles for layer in schedule.layers)
        assert schedule.total_energy_nj == pytest.approx(
            sum(layer.energy_nj for layer in schedule.layers)
        )

    def test_average_power_is_energy_over_time(self, scheduler):
        schedule = scheduler.schedule_model_arrayflex(resnet34())
        assert schedule.average_power_mw == pytest.approx(
            schedule.total_energy_nj * 1000.0 / schedule.total_time_ns
        )

    def test_depth_histogram_counts_all_layers(self, scheduler):
        schedule = scheduler.schedule_model_arrayflex(convnext_tiny())
        assert sum(schedule.depth_histogram().values()) == len(schedule.layers)

    def test_time_share_sums_to_one(self, scheduler):
        schedule = scheduler.schedule_model_arrayflex(convnext_tiny())
        assert sum(schedule.time_share_by_depth().values()) == pytest.approx(1.0)

    def test_gemm_list_input(self, scheduler):
        gemms = [GemmShape(m=64, n=64, t=64, name="g0"), GemmShape(m=32, n=32, t=32, name="g1")]
        schedule = scheduler.schedule_model_arrayflex(gemms, model_name="tiny")
        assert schedule.model_name == "tiny"
        assert len(schedule.layers) == 2

    def test_empty_gemm_list_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.schedule_model_arrayflex([])

    def test_energy_report_round_trip(self, scheduler):
        schedule = scheduler.schedule_model_arrayflex(resnet34())
        report = schedule.to_energy_report()
        assert report.total_time_ns == pytest.approx(schedule.total_time_ns)
        assert report.average_power_mw == pytest.approx(schedule.average_power_mw)

    def test_layer_energy_reports_match_schedule(self, scheduler):
        schedule = scheduler.schedule_model_arrayflex(resnet34())
        reports = scheduler.layer_energy_reports(schedule)
        assert len(reports) == len(schedule.layers)
        assert sum(r.energy_nj for r in reports) == pytest.approx(schedule.total_energy_nj)


class TestCrossAcceleratorProperties:
    def test_arrayflex_never_slower_than_its_own_normal_mode(self, scheduler):
        """Per-layer mode selection can only help relative to running the whole
        model at k = 1 on ArrayFlex."""
        model = convnext_tiny()
        adaptive = scheduler.schedule_model_arrayflex(model)
        fixed_k1_time = 0.0
        for gemm in model.gemms():
            cycles = scheduler.latency.total_cycles(gemm, 1)
            fixed_k1_time += scheduler.clock.execution_time_ns(cycles, 1)
        assert adaptive.total_time_ns <= fixed_k1_time + 1e-6

    def test_conventional_uses_fewer_or_equal_cycles_but_arrayflex_wins_time(self, scheduler):
        """ArrayFlex wins on time despite the conventional design's faster clock."""
        model = resnet34()
        arrayflex = scheduler.schedule_model_arrayflex(model)
        conventional = scheduler.schedule_model_conventional(model)
        assert arrayflex.total_cycles <= conventional.total_cycles
        assert arrayflex.total_time_ns < conventional.total_time_ns
