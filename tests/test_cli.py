"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENT_FACTORIES, build_parser, main
from repro.workloads import list_workloads


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert (args.rows, args.cols) == (128, 128)
        assert args.depths == [1, 2, 4]

    def test_experiment_choices_cover_all_paper_figures(self):
        assert {"fig5", "fig6", "fig7", "fig8", "fig9", "eq7", "clock"} <= set(
            EXPERIMENT_FACTORIES
        )

    def test_experiment_choices_include_transformer_suite(self):
        assert "transformers" in EXPERIMENT_FACTORIES

    def test_model_choices_come_from_the_registry(self):
        assert {"resnet34", "mobilenet_v1", "convnext_tiny", "bert_base"} <= set(
            list_workloads()
        )


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--rows", "64", "--cols", "64"]) == 0
        out = capsys.readouterr().out
        assert "operating points" in out
        assert "1.4" in out and "2.0" in out

    def test_decide_selects_deep_mode_for_small_t(self, capsys):
        assert main(["decide", "--m", "512", "--n", "2304", "--t", "49"]) == 0
        out = capsys.readouterr().out
        assert "best collapse depth k = 4" in out
        assert "k_hat" in out

    def test_decide_selects_normal_mode_for_large_t(self, capsys):
        assert main(["decide", "--m", "64", "--n", "576", "--t", "3136"]) == 0
        assert "best collapse depth k = 1" in capsys.readouterr().out

    def test_compare_resnet(self, capsys):
        assert main(["compare", "--model", "resnet34"]) == 0
        out = capsys.readouterr().out
        assert "ResNet-34" in out
        assert "saving" in out
        assert "energy-delay product gain" in out

    def test_compare_custom_geometry(self, capsys):
        assert main(["compare", "--model", "mobilenet_v1", "--rows", "64", "--cols", "64"]) == 0
        assert "64x64" in capsys.readouterr().out

    def test_experiment_fig6(self, capsys):
        assert main(["experiment", "fig6"]) == 0
        assert "ArrayFlex PE" in capsys.readouterr().out

    def test_experiment_clock(self, capsys):
        assert main(["experiment", "clock"]) == 0
        assert "STA" in capsys.readouterr().out

    def test_experiment_unknown_id(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_report_writes_file(self, tmp_path, capsys):
        target = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--output", str(target)]) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out

    def test_invalid_geometry_surfaces_as_error(self):
        with pytest.raises(ValueError):
            main(["info", "--rows", "100", "--cols", "100", "--depths", "1", "3"])


class TestBackendFlag:
    def test_default_backend_is_analytical(self, capsys):
        # Parser-level default is None (so commands can tell an explicit
        # request from the fallback); main() resolves it to analytical.
        assert build_parser().parse_args(["info"]).backend is None
        assert main(["compare", "--model", "resnet34"]) == 0
        assert "analytical backend" in capsys.readouterr().out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--backend", "verilog", "info"])

    def test_compare_batched_matches_analytical(self, capsys):
        assert main(["--backend", "analytical", "compare", "--model", "resnet34"]) == 0
        reference = capsys.readouterr().out
        assert main(["--backend", "batched", "compare", "--model", "resnet34"]) == 0
        fast = capsys.readouterr().out
        # Identical numbers, only the backend tag in the header differs.
        assert fast.replace("batched backend", "analytical backend") == reference

    def test_compare_cycle_backend_small_array(self, capsys):
        assert (
            main(
                [
                    "--backend",
                    "cycle",
                    "compare",
                    "--rows",
                    "8",
                    "--cols",
                    "8",
                    "--model",
                    "mobilenet_v1",
                ]
            )
            == 0
        )
        assert "cycle backend" in capsys.readouterr().out

    def test_decide_accepts_backend_flag(self, capsys):
        assert main(["--backend", "cycle", "decide", "--m", "512", "--n", "2304", "--t", "49"]) == 0
        out = capsys.readouterr().out
        assert "best collapse depth" in out
        # decide always uses the Eq. (6) policy; the CLI says so explicitly
        # instead of silently ignoring the flag.
        assert "analytical Eq. (6) policy" in out

    def test_backend_flag_accepted_after_subcommand(self, capsys):
        assert main(["compare", "--model", "resnet34", "--backend", "batched"]) == 0
        assert "batched backend" in capsys.readouterr().out

    def test_compare_sampled_backend_small_array(self, capsys):
        assert (
            main(
                [
                    "--backend", "sampled",
                    "--sample-fraction", "0.25",
                    "--sample-seed", "7",
                    "compare",
                    "--rows", "16",
                    "--cols", "16",
                    "--model", "mobilenet_v1",
                ]
            )
            == 0
        )
        assert "sampled backend" in capsys.readouterr().out

    def test_sampled_flags_configure_the_backend(self):
        from repro.cli import _resolve_backend

        args = build_parser().parse_args(
            ["--backend", "sampled", "--sample-fraction", "0.5", "--sample-seed", "3", "info"]
        )
        backend = _resolve_backend(args)
        assert backend.sample_fraction == 0.5
        assert backend.sample_seed == 3

    def test_error_target_and_min_tiles_flags_configure_the_backend(self):
        from repro.cli import _resolve_backend

        args = build_parser().parse_args(
            ["--backend", "sampled", "--error-target", "0.02",
             "--min-tiles-per-shape", "4", "info"]
        )
        backend = _resolve_backend(args)
        assert backend.error_target == 0.02
        assert backend.min_tiles_per_shape == 4

    def test_error_target_auto_mode_runs_end_to_end(self, capsys):
        assert (
            main(
                [
                    "--backend", "sampled",
                    "--error-target", "0.05",
                    "compare",
                    "--rows", "16",
                    "--cols", "16",
                    "--model", "mobilenet_v1",
                ]
            )
            == 0
        )
        assert "sampled backend" in capsys.readouterr().out

    def test_sampling_flags_require_sampled_backend(self):
        with pytest.raises(ValueError, match="requires --backend sampled"):
            main(["--sample-seed", "3", "compare", "--model", "resnet34"])
        with pytest.raises(ValueError, match="requires --backend sampled"):
            main(
                ["--backend", "batched", "--sample-fraction", "0.5",
                 "compare", "--model", "resnet34"]
            )
        with pytest.raises(ValueError, match="requires --backend sampled"):
            main(["--error-target", "0.05", "compare", "--model", "resnet34"])
        with pytest.raises(ValueError, match="requires --backend sampled"):
            main(
                ["--backend", "cycle", "--min-tiles-per-shape", "4",
                 "compare", "--model", "resnet34"]
            )

    def test_batch_rejects_stray_sampling_flags(self):
        with pytest.raises(ValueError, match="requires --backend sampled"):
            main(["--sample-seed", "3", "batch", "--models", "resnet34",
                  "--sizes", "64x64", "--no-cache"])

    @pytest.mark.parametrize(
        "command",
        [
            ["info"],
            ["decide", "--m", "64", "--n", "64", "--t", "8"],
            ["compare", "--model", "resnet34"],
            ["batch", "--models", "resnet34", "--sizes", "64x64", "--no-cache"],
            ["serve", "--port", "0"],
            ["client", "healthz"],
            ["workloads"],
            ["cache", "stats"],
            ["experiment", "fig6"],
            ["ablate", "--models", "mobilenet_v1"],
            ["report"],
            ["trace", "summary", "does-not-exist.trace"],
        ],
        ids=lambda command: command[0],
    )
    def test_every_command_rejects_stray_sampling_flags(self, command):
        """No command may silently ignore the sampling flags — including the
        ones that never build a scheduling backend at all (workloads, cache,
        client, trace summary), which used to accept and discard them."""
        with pytest.raises(ValueError, match="requires --backend sampled"):
            main(["--sample-seed", "3", *command])

    @pytest.mark.parametrize(
        "command, reason",
        [
            (["workloads"], "lists the registry"),
            (["report"], "regenerates EXPERIMENTS.md"),
            (["trace", "summary", "does-not-exist.trace"], "summarises"),
        ],
        ids=lambda value: value[0] if isinstance(value, list) else "reason",
    )
    def test_non_scheduling_commands_reject_explicit_backend(self, command, reason):
        """Commands that schedule nothing must say so instead of silently
        building (then discarding) the requested backend."""
        with pytest.raises(ValueError, match=reason):
            main(["--backend", "sampled", *command])

    def test_experiment_sampled_registered(self):
        from repro.cli import EXPERIMENT_FACTORIES

        assert "sampled" in EXPERIMENT_FACTORIES

    def test_experiment_sampled_rejects_other_explicit_backends(self):
        """The accuracy experiment must not silently swap in the default
        sampled backend when another backend was explicitly requested."""
        with pytest.raises(ValueError, match="not supported here"):
            main(["--backend", "cycle", "experiment", "sampled"])


class TestWorkloadsCommand:
    def test_lists_all_suites(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for suite in ("cnn", "cnn_extended", "transformers"):
            assert f"suite {suite!r}:" in out
        for name in ("resnet34", "bert_base", "vit_b16", "gpt2_decode"):
            assert name in out

    def test_suite_filter(self, capsys):
        assert main(["workloads", "--suite", "transformers"]) == 0
        out = capsys.readouterr().out
        assert "bert_base" in out
        assert "resnet34" not in out

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="rnns"):
            main(["workloads", "--suite", "rnns"])

    def test_rejects_cache_dir_naming_the_subcommand(self, tmp_path):
        with pytest.raises(ValueError, match="'workloads' command"):
            main(["--cache-dir", str(tmp_path), "workloads"])


class TestCompareTransformers:
    def test_compare_accepts_registry_workload(self, capsys):
        assert main(["compare", "--model", "bert_base"]) == 0
        out = capsys.readouterr().out
        assert "BERT-Base" in out
        assert "saving" in out

    def test_compare_accepts_batch_suffix(self, capsys):
        assert main(["compare", "--model", "gpt2_decode@bs4"]) == 0
        assert "GPT-2-decode@bs4" in capsys.readouterr().out

    def test_compare_unknown_model_lists_available(self):
        with pytest.raises(ValueError, match="resnet34"):
            main(["compare", "--model", "alexnet"])


class TestBatchCommand:
    def test_batch_without_cache(self, capsys):
        assert main(["batch", "--no-cache", "--models", "resnet34", "--sizes", "64x64"]) == 0
        out = capsys.readouterr().out
        assert "ResNet-34" in out
        assert "64x64" in out
        assert "served 2 requests" in out
        assert "persistent cache" not in out

    def test_batch_suite_transformers(self, capsys):
        assert main(["batch", "--no-cache", "--suite", "transformers", "--sizes", "64x64"]) == 0
        out = capsys.readouterr().out
        for name in ("BERT-Base", "GPT-2-decode", "ViT-B/16"):
            assert name in out
        assert "served 6 requests" in out

    def test_batch_models_and_suite_combine_without_duplicates(self, capsys):
        assert (
            main(
                [
                    "batch", "--no-cache", "--models", "bert_base",
                    "--suite", "transformers", "--sizes", "64x64",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("BERT-Base") == 1

    def test_batch_size_scales_workloads(self, capsys):
        assert (
            main(
                [
                    "batch", "--no-cache", "--models", "gpt2_decode",
                    "--batch-size", "8", "--sizes", "64x64",
                ]
            )
            == 0
        )
        assert "GPT-2-decode@bs8" in capsys.readouterr().out

    def test_batch_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            main(["batch", "--no-cache", "--batch-size", "0", "--sizes", "64x64"])

    def test_batch_reports_timed_out_rows_and_exits_nonzero(self, capsys, monkeypatch):
        """The timed-out branch of the batch report, forced deterministically."""
        from repro.serve import Response, SchedulingService

        def fake_compare(self, workloads, totals_only=False, timeout=None):
            workloads = list(workloads)
            self._ctr_timed_out.inc(2 * len(workloads))

            def timed_out(conventional):
                return Response(
                    status="timeout",
                    model_name="ResNet-34",
                    conventional=conventional,
                    timeout_s=timeout or 0.0,
                    cancelled=True,
                )

            return [(timed_out(False), timed_out(True)) for _ in workloads]

        monkeypatch.setattr(SchedulingService, "compare", fake_compare)
        code = main(
            [
                "batch", "--no-cache", "--models", "resnet34",
                "--sizes", "64x64", "--timeout", "0.001",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "timed out" in out
        assert "WARNING: 2 requests timed out" in out

    def test_batch_generous_timeout_reports_nothing(self, capsys):
        assert (
            main(
                [
                    "batch", "--no-cache", "--models", "resnet34",
                    "--sizes", "64x64", "--timeout", "300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "timed out" not in out

    def test_batch_defaults_cover_all_models(self, capsys, tmp_path):
        assert main(["--cache-dir", str(tmp_path), "batch", "--sizes", "64x64"]) == 0
        out = capsys.readouterr().out
        for name in ("ResNet-34", "MobileNetV1", "ConvNeXt-T"):
            assert name in out
        assert str(tmp_path) in out

    def test_batch_warm_rerun_skips_solving(self, capsys, tmp_path):
        args = ["--cache-dir", str(tmp_path), "batch", "--models", "resnet34", "--sizes", "64x64"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert ", 0 solved" in capsys.readouterr().out

    def test_batch_default_cache_respects_xdg(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert main(["batch", "--models", "resnet34", "--sizes", "64x64"]) == 0
        assert str(tmp_path) in capsys.readouterr().out
        assert (tmp_path / "repro-arrayflex").is_dir()

    def test_batch_invalid_size_surfaces_as_error(self):
        with pytest.raises(ValueError):
            main(["batch", "--no-cache", "--sizes", "not-a-size"])

    def test_compare_with_cache_dir_uses_store(self, capsys, tmp_path):
        args = [
            "--backend", "batched", "--cache-dir", str(tmp_path),
            "compare", "--model", "resnet34", "--rows", "64", "--cols", "64",
        ]
        assert main(args) == 0
        assert "batched backend" in capsys.readouterr().out
        assert list(tmp_path.glob("decisions-*.npy"))

    def test_experiment_and_report_reject_cache_dir(self, tmp_path):
        with pytest.raises(ValueError):
            main(["--cache-dir", str(tmp_path), "experiment", "fig6"])
        with pytest.raises(ValueError):
            main(["--cache-dir", str(tmp_path), "report", "--output", str(tmp_path / "E.md")])

    def test_compare_without_batched_backend_rejects_cache_dir(self, tmp_path):
        with pytest.raises(ValueError):
            main(["--cache-dir", str(tmp_path), "compare", "--model", "resnet34"])

    def test_batch_rejects_non_batched_backend(self):
        with pytest.raises(ValueError):
            main(["--backend", "cycle", "batch", "--no-cache", "--sizes", "64x64"])

    def test_batch_accepts_explicit_batched_backend(self, capsys):
        assert main(["--backend", "batched", "batch", "--no-cache", "--sizes", "64x64"]) == 0
        assert "served" in capsys.readouterr().out

    def test_batch_no_cache_conflicts_with_cache_dir(self, tmp_path):
        with pytest.raises(ValueError):
            main(["--cache-dir", str(tmp_path), "batch", "--no-cache", "--sizes", "64x64"])

    def test_batch_backend_flag_after_subcommand(self, capsys):
        assert main(["batch", "--no-cache", "--sizes", "64x64", "--backend", "batched"]) == 0
        assert "served" in capsys.readouterr().out
        with pytest.raises(ValueError):
            main(["batch", "--no-cache", "--sizes", "64x64", "--backend", "cycle"])


class TestCacheCommand:
    """`python -m repro cache {stats,prune}`: store maintenance over --cache-dir."""

    @staticmethod
    def _warm(tmp_path):
        args = ["--cache-dir", str(tmp_path), "batch", "--models", "resnet34", "--sizes", "64x64"]
        assert main(args) == 0

    def test_stats_reports_shards_rows_and_counters(self, capsys, tmp_path):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main(["--cache-dir", str(tmp_path), "cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "shards         : 1" in out
        assert "rows           :" in out
        assert "warm-start hits" in out
        assert "corrupt shards : 0" in out

    def test_stats_counts_corrupt_shards(self, capsys, tmp_path):
        self._warm(tmp_path)
        shard = next(tmp_path.glob("decisions-*.npy"))
        shard.write_bytes(b"garbage")
        capsys.readouterr()
        assert main(["--cache-dir", str(tmp_path), "cache", "stats"]) == 0
        assert "corrupt shards : 1" in capsys.readouterr().out

    def test_stats_on_empty_directory(self, capsys, tmp_path):
        assert main(["--cache-dir", str(tmp_path / "nothing"), "cache", "stats"]) == 0
        assert "shards         : 0" in capsys.readouterr().out

    def test_prune_evicts_down_to_the_requested_size(self, capsys, tmp_path):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main(
            ["--cache-dir", str(tmp_path), "cache", "prune", "--max-bytes", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "pruned 1 shards" in out
        assert not list(tmp_path.glob("decisions-*.npy"))

    def test_prune_requires_max_bytes(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--cache-dir", str(tmp_path), "cache", "prune"])

    def test_cache_requires_an_action(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--cache-dir", str(tmp_path), "cache"])

    def test_cache_rejects_explicit_backend(self, tmp_path):
        with pytest.raises(ValueError):
            main(["--backend", "batched", "--cache-dir", str(tmp_path), "cache", "stats"])

    def test_cache_rejects_stray_sampling_flags(self, tmp_path):
        with pytest.raises(ValueError):
            main(["--sample-fraction", "0.1", "--cache-dir", str(tmp_path), "cache", "stats"])


class TestAblateCommand:
    FAST = ["ablate", "--models", "mobilenet_v1", "--rows", "16", "--cols", "16"]

    def test_default_components_run_end_to_end(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "Component importance" in out
        assert "activity_model" in out
        assert "geometry" in out
        assert "depths" in out

    def test_explicit_components_and_metric(self, capsys):
        assert main(
            [
                *self.FAST,
                "--component", "activity_model=constant:utilization",
                "--metric", "latency",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "latency" in out
        assert "activity_model=utilization" in out

    def test_json_output_parses(self, capsys):
        assert main(
            [
                *self.FAST,
                "--component", "activity_model=constant:utilization",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"]["run_id"] == "baseline"
        assert [entry["component"] for entry in payload["ranking"]] == [
            "activity_model"
        ]

    def test_component_spellings_with_dashes(self, capsys):
        assert main(
            [*self.FAST, "--component", "activity-model=constant:utilization"]
        ) == 0
        assert "activity_model=utilization" in capsys.readouterr().out

    def test_malformed_component_rejected(self):
        with pytest.raises(ValueError, match="KNOB=BASELINE:ALT"):
            main([*self.FAST, "--component", "activity_model"])

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown ablation knob"):
            main([*self.FAST, "--component", "voltage=1:2"])

    def test_backend_component_conflicts_with_backend_flag(self):
        with pytest.raises(ValueError, match="--backend"):
            main(
                [
                    "--backend", "batched", *self.FAST,
                    "--component", "backend=batched:analytical",
                ]
            )

    def test_sampling_component_runs_with_sampled_backend(self, capsys):
        assert main(
            [
                "--backend", "sampled", "--sample-fraction", "0.25", *self.FAST,
                "--component", "sample_seed=0:1",
            ]
        ) == 0
        assert "sample_seed=1" in capsys.readouterr().out

    def test_rejects_cache_dir(self, tmp_path):
        with pytest.raises(ValueError, match="cache"):
            main(["--cache-dir", str(tmp_path), *self.FAST])
