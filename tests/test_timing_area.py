"""Tests for the PE / array area model (Fig. 6 substitute)."""

import pytest

from repro.timing.area_model import AreaModel
from repro.timing.technology import TechnologyModel


@pytest.fixture(scope="module")
def area():
    return AreaModel(TechnologyModel.default_28nm())


class TestPEAreas:
    def test_conventional_pe_has_no_arrayflex_extras(self, area):
        breakdown = area.conventional_pe_area()
        assert breakdown.carry_save_adder == 0.0
        assert breakdown.bypass_muxes == 0.0
        assert breakdown.config_bits == 0.0
        assert breakdown.layout_overhead == 0.0

    def test_arrayflex_pe_has_all_extras(self, area):
        breakdown = area.arrayflex_pe_area()
        assert breakdown.carry_save_adder > 0
        assert breakdown.bypass_muxes > 0
        assert breakdown.config_bits > 0
        assert breakdown.layout_overhead > 0

    def test_shared_components_identical(self, area):
        conventional = area.conventional_pe_area()
        arrayflex = area.arrayflex_pe_area()
        assert arrayflex.multiplier == conventional.multiplier
        assert arrayflex.adder == conventional.adder
        assert arrayflex.registers == conventional.registers

    def test_multiplier_dominates_pe_area(self, area):
        breakdown = area.conventional_pe_area()
        assert breakdown.multiplier > 0.5 * breakdown.total

    def test_breakdown_total_is_sum(self, area):
        breakdown = area.arrayflex_pe_area()
        parts = breakdown.as_dict()
        total = parts.pop("total")
        assert total == pytest.approx(sum(parts.values()))

    def test_register_bits_per_pe(self, area):
        # weight (32) + activation (32) + partial sum (64)
        assert area.register_bits_per_pe() == 128


class TestOverheads:
    def test_paper_16_percent_overhead(self, area):
        """Fig. 6: ArrayFlex PEs are ~16% larger."""
        assert area.pe_area_overhead() == pytest.approx(0.16, abs=0.02)

    def test_structural_overhead_below_layout_overhead(self, area):
        assert 0.0 < area.pe_structural_overhead() < area.pe_area_overhead()

    def test_overhead_independent_of_array_size(self, area):
        small = area.array_area_um2(8, 8, True) / area.array_area_um2(8, 8, False)
        large = area.array_area_um2(128, 128, True) / area.array_area_um2(128, 128, False)
        assert small == pytest.approx(large)


class TestArrayAreas:
    def test_array_area_scales_with_pe_count(self, area):
        assert area.array_area_um2(16, 16, False) == pytest.approx(
            4 * area.array_area_um2(8, 8, False)
        )

    def test_mm2_conversion(self, area):
        assert area.array_area_mm2(8, 8, True) == pytest.approx(
            area.array_area_um2(8, 8, True) / 1e6
        )

    def test_invalid_dimensions(self, area):
        with pytest.raises(ValueError):
            area.array_area_um2(0, 8, True)

    def test_paper_arrays_have_plausible_size(self, area):
        """A 128x128 32-bit MAC array in 28 nm lands in the tens of mm^2."""
        assert 10.0 < area.array_area_mm2(128, 128, False) < 300.0
