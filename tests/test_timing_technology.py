"""Tests for the calibrated technology model."""

import pytest

from repro.timing.technology import TechnologyModel


class TestDefaults:
    def test_default_name(self, tech):
        assert tech.name == "arrayflex-28nm"

    def test_datapath_widths_match_paper(self, tech):
        """Section IV: 32-bit quantized operands, 64-bit column additions."""
        assert tech.input_width == 32
        assert tech.accum_width == 64

    def test_baseline_path_is_500ps(self, tech):
        """Calibration target: the conventional SA closes at 2 GHz."""
        assert tech.baseline_path_ps == pytest.approx(500.0)

    def test_collapse_increment_is_50ps(self, tech):
        """Calibration target: Eq. 5 adds 50 ps per collapsed stage."""
        assert tech.collapse_increment_ps == pytest.approx(50.0)

    def test_multiplier_dominates_path(self, tech):
        assert tech.d_mul_ps > tech.d_add_ps > tech.d_csa_ps

    def test_csa_much_faster_than_cpa(self, tech):
        """The whole point of the carry-save stage (Section III-B)."""
        assert tech.d_csa_ps < tech.d_add_ps / 3

    def test_leakage_non_negative(self, tech):
        assert tech.p_leak_pe_mw >= 0


class TestValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("d_mul_ps", 0.0),
            ("d_ff_ps", -1.0),
            ("e_mul_pj", 0.0),
            ("input_width", 0),
            ("area_per_gate_um2", -0.1),
            ("frequency_round_ghz", 0.0),
        ],
    )
    def test_non_positive_parameters_rejected(self, field, value):
        with pytest.raises(ValueError):
            TechnologyModel.from_overrides(**{field: value})

    def test_accumulator_narrower_than_input_rejected(self):
        with pytest.raises(ValueError):
            TechnologyModel.from_overrides(input_width=32, accum_width=16)

    def test_negative_leakage_rejected(self):
        with pytest.raises(ValueError):
            TechnologyModel.from_overrides(p_leak_pe_mw=-0.1)


class TestDerivedAndVariants:
    def test_from_overrides(self):
        tech = TechnologyModel.from_overrides(d_mul_ps=400.0)
        assert tech.d_mul_ps == 400.0
        assert tech.d_add_ps == TechnologyModel.default_28nm().d_add_ps

    def test_scaled_scales_all_delays(self, tech):
        slow = tech.scaled(2.0)
        assert slow.d_mul_ps == 2 * tech.d_mul_ps
        assert slow.d_csa_ps == 2 * tech.d_csa_ps
        assert slow.baseline_path_ps == 2 * tech.baseline_path_ps

    def test_scaled_keeps_energy(self, tech):
        slow = tech.scaled(2.0)
        assert slow.e_mul_pj == tech.e_mul_pj

    def test_scaled_names_variant(self, tech):
        assert "x2" in tech.scaled(2.0).name
        assert tech.scaled(0.5, name="fast").name == "fast"

    def test_scaled_invalid_factor(self, tech):
        with pytest.raises(ValueError):
            tech.scaled(0.0)

    def test_frozen(self, tech):
        with pytest.raises(Exception):
            tech.d_mul_ps = 1.0  # type: ignore[misc]
