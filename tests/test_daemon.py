"""HTTP-layer tests for the scheduler daemon (`repro.serve.daemon`).

Covers the acceptance criteria end to end: wire parity with direct
library calls (bit-identical floats), queue-depth backpressure (429),
per-client rate limits, the concurrency hammer (no lost counter
updates), graceful drain — including a real SIGTERM against a
``python -m repro serve`` subprocess — and live /metrics and /healthz.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.backends import BatchedCachedBackend, DecisionStore
from repro.cli import main
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape
from repro.serve import (
    PROTOCOL_VERSION,
    AdmissionRejected,
    DaemonClient,
    InvalidRequest,
    RateLimited,
    Request,
    RequestTimeout,
    SchedulerDaemon,
    SchedulingService,
    ServeError,
    response_to_wire,
)

#: Small explicit GEMM workloads: fast to schedule, wire-travelable.
GEMMS_A = [[64, 576, 3136, "conv_a"]]
GEMMS_B = [[512, 2304, 49, "conv_b"]]
WIRE_CONFIG = {"rows": 128, "cols": 128, "depths": [1, 2, 4]}


def wire_request(model, **overrides):
    payload = {"v": PROTOCOL_VERSION, "model": model, "config": dict(WIRE_CONFIG)}
    payload.update(overrides)
    return payload


@pytest.fixture()
def daemon():
    """A live daemon on an ephemeral port, drained at teardown."""
    daemon = SchedulerDaemon(port=0, max_inflight=32)
    daemon.start()
    try:
        yield daemon
    finally:
        assert daemon.drain(timeout=30)


@pytest.fixture()
def client(daemon):
    return DaemonClient(port=daemon.address[1])


class _StallingBackend(BatchedCachedBackend):
    """Backend whose model scheduling blocks until an event is set."""

    def __init__(self, gate: threading.Event):
        super().__init__()
        self.gate = gate

    def schedule_model(self, model, cfg, model_name=None):
        assert self.gate.wait(timeout=60), "test gate was never opened"
        return super().schedule_model(model, cfg, model_name=model_name)


def _stalling_daemon(**kwargs):
    gate = threading.Event()
    service = SchedulingService(backend=_StallingBackend(gate))
    daemon = SchedulerDaemon(service, port=0, **kwargs)
    daemon.start()
    return daemon, gate


class TestHealthz:
    def test_healthz_reports_liveness(self, client, daemon):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["v"] == PROTOCOL_VERSION
        assert body["inflight"] == 0
        assert body["max_inflight"] == 32
        assert body["uptime_s"] >= 0.0


class TestScheduleParity:
    """Daemon responses are bit-identical to direct SchedulingService calls."""

    @staticmethod
    def _strip(body):
        body = dict(body)
        body.pop("deduplicated", None)  # cache provenance, not the answer
        return body

    def test_schedule_matches_direct_service(self, client):
        request = Request(
            model="resnet34", config=ArrayFlexConfig.paper_128x128()
        )
        with SchedulingService() as direct:
            expected = response_to_wire(direct.submit(request))
        body = client.schedule(request)
        assert self._strip(body) == self._strip(
            json.loads(json.dumps(expected))
        )
        assert body["result"]["kind"] == "schedule"

    def test_gemm_list_and_totals_only(self, client):
        body = client.schedule(wire_request(GEMMS_A, totals_only=True))
        assert body["status"] == "ok"
        assert body["result"]["kind"] == "totals"
        with SchedulingService() as direct:
            expected = direct.submit(
                Request(
                    model="resnet34", config=ArrayFlexConfig.paper_128x128()
                )
            )
        assert body["result"]["time_ns"] > 0
        assert expected.ok  # the direct path stays healthy alongside

    def test_batch_endpoint_parity_and_dedup(self, client):
        body = client.batch(
            [wire_request(GEMMS_A), wire_request(GEMMS_B), wire_request(GEMMS_A)]
        )
        assert body["count"] == 3
        first, second, third = body["responses"]
        assert all(item["status"] == "ok" for item in body["responses"])
        assert third["deduplicated"] is True
        assert self._strip(first) == self._strip(third)
        assert first["result"] != second["result"]

    def test_compare_endpoint_pairs_both_sides(self, client):
        body = client.compare([wire_request(GEMMS_A)])
        assert body["count"] == 1
        [[flex, conv]] = body["pairs"]
        assert flex["conventional"] is False
        assert conv["conventional"] is True
        with SchedulingService() as direct:
            [(dflex, dconv)] = direct.compare(
                [
                    (
                        [GemmShape(m=64, n=576, t=3136, name="conv_a")],
                        ArrayFlexConfig.paper_128x128(),
                    )
                ]
            )
        assert flex["result"]["time_ns"] == dflex.unwrap().total_time_ns
        assert conv["result"]["time_ns"] == dconv.unwrap().total_time_ns

    def test_compare_rejects_preset_conventional(self, client):
        with pytest.raises(InvalidRequest, match="conventional"):
            client.compare([wire_request(GEMMS_A, conventional=True)])


class TestWireErrors:
    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServeError) as info:
            client._call("GET", "/v2/schedule")
        assert "no such endpoint" in str(info.value)

    def test_wrong_protocol_version_is_invalid_request(self, client):
        with pytest.raises(InvalidRequest, match="protocol version"):
            client.schedule(wire_request(GEMMS_A, v=99))

    def test_unknown_request_field_is_invalid_request(self, client):
        with pytest.raises(InvalidRequest, match="converntional"):
            client.schedule(wire_request(GEMMS_A, converntional=True))

    def test_batch_requires_request_list(self, client):
        with pytest.raises(InvalidRequest, match="requests"):
            client._call("POST", "/v1/batch", {"v": PROTOCOL_VERSION, "requests": []})

    def test_raw_garbage_body_is_400(self, daemon):
        connection = HTTPConnection("127.0.0.1", daemon.address[1], timeout=10)
        try:
            connection.request(
                "POST",
                "/v1/schedule",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_missing_body_is_400(self, daemon):
        connection = HTTPConnection("127.0.0.1", daemon.address[1], timeout=10)
        try:
            connection.request("POST", "/v1/schedule")
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert body["error"]["code"] == "invalid_request"


class TestBackpressure:
    def test_saturated_queue_sheds_with_429(self):
        """Beyond max_inflight the daemon rejects instead of deadlocking."""
        daemon, gate = _stalling_daemon(max_inflight=1)
        client = DaemonClient(port=daemon.address[1])
        results = {}

        def occupy():
            results["first"] = client.schedule(wire_request(GEMMS_A))

        occupant = threading.Thread(target=occupy)
        occupant.start()
        try:
            deadline = time.monotonic() + 10
            while daemon.gate.depth < 1:
                assert time.monotonic() < deadline, "first request never admitted"
                time.sleep(0.01)
            started = time.monotonic()
            with pytest.raises(AdmissionRejected) as info:
                client.schedule(wire_request(GEMMS_B))
            assert time.monotonic() - started < 5.0  # shed, not queued
            assert info.value.retry_after_s is not None
            assert info.value.http_status == 429
        finally:
            gate.set()
            occupant.join(timeout=60)
        assert results["first"]["status"] == "ok"
        metrics = client.metrics()
        assert metrics["daemon"]["rejections"]["/v1/schedule:admission_rejected"] == 1
        assert daemon.drain(timeout=30)

    def test_retry_after_header_on_429(self):
        daemon, gate = _stalling_daemon(max_inflight=1)
        try:
            client = DaemonClient(port=daemon.address[1])
            blocker = threading.Thread(
                target=lambda: client.schedule(wire_request(GEMMS_A))
            )
            blocker.start()
            deadline = time.monotonic() + 10
            while daemon.gate.depth < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            connection = HTTPConnection("127.0.0.1", daemon.address[1], timeout=10)
            try:
                connection.request(
                    "POST",
                    "/v1/schedule",
                    body=json.dumps(wire_request(GEMMS_B)).encode(),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                assert response.status == 429
                assert float(response.headers["Retry-After"]) > 0
            finally:
                connection.close()
        finally:
            gate.set()
            blocker.join(timeout=60)
        assert daemon.drain(timeout=30)


class TestRateLimit:
    def test_token_bucket_refuses_with_503(self):
        daemon = SchedulerDaemon(port=0, rate_limit=0.01, rate_burst=2)
        daemon.start()
        try:
            client = DaemonClient(port=daemon.address[1], client_id="hammer")
            client.schedule(wire_request(GEMMS_A))
            client.schedule(wire_request(GEMMS_A))  # burst exhausted
            with pytest.raises(RateLimited) as info:
                client.schedule(wire_request(GEMMS_A))
            assert info.value.retry_after_s > 0
            assert info.value.http_status == 503
            # A different client owns a different (full) bucket.
            other = DaemonClient(port=daemon.address[1], client_id="other")
            assert other.schedule(wire_request(GEMMS_A))["status"] == "ok"
            assert daemon.metrics_payload()["rate_limiter"]["clients"] == 2
        finally:
            assert daemon.drain(timeout=30)

    def test_get_endpoints_are_never_rate_limited(self):
        daemon = SchedulerDaemon(port=0, rate_limit=0.01, rate_burst=1)
        daemon.start()
        try:
            client = DaemonClient(port=daemon.address[1], client_id="probe")
            client.schedule(wire_request(GEMMS_A))
            for _ in range(5):
                assert client.healthz()["status"] == "ok"
        finally:
            assert daemon.drain(timeout=30)


class TestRequestDeadline:
    def test_schedule_deadline_maps_to_504(self):
        daemon, gate = _stalling_daemon(default_timeout=0.05)
        try:
            client = DaemonClient(port=daemon.address[1])
            with pytest.raises(RequestTimeout) as info:
                client.schedule(wire_request(GEMMS_A))
            assert info.value.http_status == 504
        finally:
            gate.set()
            assert daemon.drain(timeout=30)

    def test_batch_reports_timeouts_per_item(self):
        """A batch never fails wholesale: timed-out items say so in place."""
        daemon, gate = _stalling_daemon(default_timeout=0.05)
        try:
            client = DaemonClient(port=daemon.address[1])
            body = client.batch([wire_request(GEMMS_A)])
            assert body["responses"][0]["status"] == "timeout"
        finally:
            gate.set()
            assert daemon.drain(timeout=30)


class TestConcurrencyHammer:
    def test_no_lost_updates_under_concurrent_load(self, daemon):
        """N threads hammering /v1/schedule: every request is counted,
        dedup collapses identical work, nothing deadlocks or errors."""
        threads, per_thread = 8, 5
        port = daemon.address[1]
        errors = []

        def hammer(index):
            client = DaemonClient(port=port, client_id=f"hammer-{index}")
            try:
                for i in range(per_thread):
                    model = GEMMS_A if (index + i) % 2 == 0 else GEMMS_B
                    body = client.schedule(wire_request(model))
                    assert body["status"] == "ok"
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        workers = [
            threading.Thread(target=hammer, args=(index,)) for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert not errors
        total = threads * per_thread
        metrics = DaemonClient(port=port).metrics()
        assert metrics["daemon"]["requests"]["/v1/schedule"] == total
        assert metrics["daemon"]["outcomes"]["/v1/schedule:ok"] == total
        assert metrics["service"]["requests"] == total
        # Two distinct request identities: everything else deduplicated.
        assert metrics["service"]["submitted"] == 2
        assert metrics["service"]["deduplicated"] == total - 2
        histogram = metrics["daemon"]["latency_ms_by_backend"]["batched"]
        assert histogram["count"] == total
        assert histogram["buckets_le_ms"]["+Inf"] == total


class TestMetrics:
    def test_metrics_merge_daemon_service_and_store(self, tmp_path):
        daemon = SchedulerDaemon(port=0, cache_dir=tmp_path)
        daemon.start()
        try:
            client = DaemonClient(port=daemon.address[1])
            client.schedule(wire_request(GEMMS_A))
            client.schedule(wire_request(GEMMS_A))
            body = client.metrics()
            assert body["daemon"]["requests"]["/v1/schedule"] == 2
            assert body["service"]["requests"] == 2
            assert body["rates"]["dedup"] == 0.5
            assert "decision_cache" in body["rates"]
            assert body["store"]["merges"] >= 0  # the counters hook is live
            assert body["inflight"] == 0
        finally:
            assert daemon.drain(timeout=30)


class TestGracefulDrain:
    def test_drain_finishes_inflight_and_flushes_store(self, tmp_path):
        daemon = SchedulerDaemon(port=0, cache_dir=tmp_path)
        daemon.start()
        port = daemon.address[1]
        client = DaemonClient(port=port)
        assert client.schedule(wire_request(GEMMS_A))["status"] == "ok"
        assert daemon.drain(timeout=30)
        assert daemon.service.closed
        assert DecisionStore(tmp_path).stats()["entries"] > 0
        with pytest.raises(OSError):
            client.healthz()  # the listening socket is gone

    def test_request_drain_is_idempotent(self):
        daemon = SchedulerDaemon(port=0)
        daemon.start()
        daemon.request_drain()
        daemon.request_drain()
        assert daemon.drain(timeout=30)

    def test_sigterm_drains_a_real_serve_process(self, tmp_path):
        """`python -m repro serve` + SIGTERM: graceful drain, exit 0."""
        env = dict(os.environ)
        repo = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(repo / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "--cache-dir", str(tmp_path),
                "serve", "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=repo,
        )
        try:
            banner = process.stdout.readline()
            assert "http://" in banner, banner
            port = int(banner.rsplit(":", 1)[1])
            client = DaemonClient(port=port)
            deadline = time.monotonic() + 15
            while True:
                try:
                    assert client.healthz()["status"] == "ok"
                    break
                except OSError:
                    assert time.monotonic() < deadline, "daemon never came up"
                    time.sleep(0.05)
            assert client.schedule(wire_request(GEMMS_A))["status"] == "ok"
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=30)
        except BaseException:
            process.kill()
            raise
        assert process.returncode == 0
        assert "drained" in out
        assert DecisionStore(tmp_path).stats()["entries"] > 0


class TestCliClient:
    def test_client_healthz_and_schedule(self, daemon, capsys):
        port = str(daemon.address[1])
        assert main(["client", "--port", port, "healthz"]) == 0
        assert '"status": "ok"' in capsys.readouterr().out
        assert main(["client", "--port", port, "schedule", "--model", "resnet34"]) == 0
        out = capsys.readouterr().out
        assert "ResNet-34 [arrayflex]" in out and "ms" in out

    def test_client_compare_reports_saving(self, daemon, capsys):
        port = str(daemon.address[1])
        assert main(["client", "--port", port, "compare", "--model", "resnet34"]) == 0
        out = capsys.readouterr().out
        assert "[conventional]" in out
        assert "latency saving" in out

    def test_client_unreachable_daemon_exits_1(self, capsys):
        assert main(["client", "--port", "1", "healthz"]) == 1
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_client_error_exit_codes_match_hierarchy(self, capsys):
        daemon = SchedulerDaemon(port=0, rate_limit=0.01, rate_burst=1)
        daemon.start()
        try:
            port = str(daemon.address[1])
            # Exhaust the shared (per-host) bucket, then the CLI is throttled.
            DaemonClient(port=daemon.address[1]).schedule(wire_request(GEMMS_A))
            code = main(["client", "--port", port, "schedule", "--model", "resnet34"])
            assert code == RateLimited.exit_code == 4
            assert "rate_limited" in capsys.readouterr().err
        finally:
            assert daemon.drain(timeout=30)

    def test_client_rejects_backend_flag(self):
        with pytest.raises(ValueError, match="not supported here"):
            main(["--backend", "batched", "client", "healthz"])
