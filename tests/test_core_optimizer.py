"""Tests for the per-layer pipeline-depth optimizer (Eq. 7 and discrete search)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.config import ArrayFlexConfig
from repro.core.optimizer import PipelineOptimizer
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import resnet34


@pytest.fixture(scope="module")
def optimizer():
    return PipelineOptimizer(ArrayFlexConfig(rows=128, cols=128))


class TestAnalyticalOptimum:
    def test_eq7_closed_form(self, optimizer):
        """k_hat = sqrt((R + C) / (R + T - 2) * delay_ratio)."""
        gemm = GemmShape(m=256, n=2304, t=196)
        expected = math.sqrt((128 + 128) / (128 + 196 - 2) * 10.0)
        assert optimizer.analytical_optimal_depth(gemm) == pytest.approx(expected)

    def test_large_t_pushes_khat_below_one(self, optimizer):
        gemm = GemmShape(m=64, n=576, t=3136)
        assert optimizer.analytical_optimal_depth(gemm) < 1.0

    def test_small_t_pushes_khat_high(self, optimizer):
        gemm = GemmShape(m=512, n=4608, t=49)
        assert optimizer.analytical_optimal_depth(gemm) > 3.0

    def test_khat_grows_with_array_size(self):
        """Eq. 7 'predicts' higher k for larger arrays (paper Section IV-A)."""
        gemm = GemmShape(m=256, n=2304, t=196)
        small = PipelineOptimizer(ArrayFlexConfig(rows=128, cols=128))
        large = PipelineOptimizer(ArrayFlexConfig(rows=256, cols=256))
        assert large.analytical_optimal_depth(gemm) > small.analytical_optimal_depth(gemm)

    @given(st.integers(1, 8192))
    def test_khat_monotonically_decreasing_in_t(self, t):
        optimizer = PipelineOptimizer(ArrayFlexConfig(rows=128, cols=128))
        k_t = optimizer.analytical_optimal_depth(GemmShape(m=64, n=64, t=t))
        k_t2 = optimizer.analytical_optimal_depth(GemmShape(m=64, n=64, t=t + 100))
        assert k_t >= k_t2


class TestDiscreteSelection:
    def test_best_depth_is_true_argmin(self, optimizer):
        gemm = GemmShape(m=512, n=2304, t=49)
        decision = optimizer.best_depth(gemm)
        assert decision.execution_time_ns == min(decision.per_depth_time_ns.values())
        assert decision.per_depth_time_ns[decision.collapse_depth] == pytest.approx(
            decision.execution_time_ns
        )

    def test_large_t_layer_selects_normal_mode(self, optimizer):
        decision = optimizer.best_depth(GemmShape(m=64, n=576, t=3136))
        assert decision.collapse_depth == 1
        assert not decision.is_shallow

    def test_small_t_layer_selects_deepest_mode(self, optimizer):
        decision = optimizer.best_depth(GemmShape(m=512, n=4608, t=49))
        assert decision.collapse_depth == 4
        assert decision.is_shallow

    def test_decision_cycles_match_latency_model(self, optimizer):
        gemm = GemmShape(m=512, n=2304, t=49)
        decision = optimizer.best_depth(gemm)
        assert decision.cycles == optimizer.latency.total_cycles(gemm, decision.collapse_depth)

    def test_decision_reports_clock_of_selected_mode(self, optimizer):
        decision = optimizer.best_depth(GemmShape(m=512, n=4608, t=49))
        assert decision.clock_frequency_ghz == pytest.approx(1.4)

    def test_per_depth_times_cover_supported_set(self, optimizer):
        decision = optimizer.best_depth(GemmShape(m=128, n=128, t=128))
        assert set(decision.per_depth_time_ns) == {1, 2, 4}

    def test_decide_model_length(self, optimizer):
        decisions = optimizer.decide_model(resnet34().gemms())
        assert len(decisions) == 34

    @given(st.integers(1, 8192), st.integers(1, 8192), st.integers(1, 8192))
    def test_selected_mode_never_loses_to_other_supported_modes(self, m, n, t):
        optimizer = PipelineOptimizer(ArrayFlexConfig(rows=128, cols=128))
        decision = optimizer.best_depth(GemmShape(m=m, n=n, t=t))
        for depth, time_ns in decision.per_depth_time_ns.items():
            assert decision.execution_time_ns <= time_ns + 1e-9


class TestExhaustiveSearch:
    def test_exhaustive_covers_all_legal_depths(self, optimizer):
        decision = optimizer.exhaustive_best_depth(GemmShape(m=256, n=2304, t=196))
        assert set(decision.per_depth_time_ns) == {1, 2, 4}

    def test_exhaustive_on_132_array_includes_k3(self):
        optimizer = PipelineOptimizer(ArrayFlexConfig.fig5_132x132())
        decision = optimizer.exhaustive_best_depth(GemmShape(m=256, n=2304, t=196))
        assert 3 in decision.per_depth_time_ns

    def test_exhaustive_never_worse_than_restricted(self, optimizer):
        gemm = GemmShape(m=512, n=2304, t=100)
        restricted = optimizer.best_depth(gemm)
        exhaustive = optimizer.exhaustive_best_depth(gemm)
        assert exhaustive.execution_time_ns <= restricted.execution_time_ns + 1e-9
