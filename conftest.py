"""Pytest root conftest.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. in offline environments where ``pip install -e .`` cannot
fetch build dependencies).  When the package *is* installed, the installed
location wins and this is a no-op.
"""
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
